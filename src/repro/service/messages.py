"""Bus message model: topics, kinds, and the canonical wire rendering.

The service's :class:`~repro.service.bus.EventBus` follows the classic
topics / subscriptions / messages split: a *topic* is a dot-separated path
(``job.j0003.lifecycle``, ``scheduler.lease``), a *message* is an immutable
record stamped with a bus-global sequence number and the service's virtual
time, and subscribers match topics with single-segment (``*``) or
tail (``#``) wildcards.

Determinism is a first-class requirement here: the scheduler-determinism
invariant is checked by hashing the *canonical rendering* of the whole
message stream (:meth:`BusMessage.canonical`), so two service instances fed
the same submissions with the same seed must produce byte-identical
streams.  Payload values are therefore restricted to primitives (str, int,
float, bool, None, and flat tuples thereof) whose ``repr`` round-trips
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Tuple

__all__ = [
    "BusMessage",
    "job_topic",
    "topic_matches",
    "TOPIC_QUEUE",
    "TOPIC_LEASES",
    "LIFECYCLE_KINDS",
]

#: Queue-level events: a submission entering (or bouncing off) the queue.
TOPIC_QUEUE = "queue"
#: Scheduler lease events: grants (FIFO or backfill) and releases.
TOPIC_LEASES = "scheduler.lease"

#: The job lifecycle in its legal order.  ``rejected`` replaces the whole
#: tail for submissions that never reach the cluster; ``failed`` replaces
#: ``completed`` for jobs that died on the machine (or overran their
#: time budget).
LIFECYCLE_KINDS = (
    "submitted", "rejected", "admitted", "started", "completed", "failed",
    "released",
)

_PRIMITIVES = (str, int, float, bool, type(None))


def job_topic(job_id: str, channel: str = "lifecycle") -> str:
    """Topic for one job's event stream: ``job.<id>.lifecycle|probes``."""
    return f"job.{job_id}.{channel}"


def topic_matches(pattern: str, topic: str) -> bool:
    """Dot-segment matching: ``*`` is one segment, a trailing ``#`` is any
    tail (including none).  Patterns with no wildcard are exact matches."""
    if pattern == topic:
        return True
    pparts = pattern.split(".")
    tparts = topic.split(".")
    for i, p in enumerate(pparts):
        if p == "#":
            return True
        if i >= len(tparts):
            return False
        if p != "*" and p != tparts[i]:
            return False
    return len(pparts) == len(tparts)


def _check_value(key: str, value: Any) -> Any:
    if isinstance(value, _PRIMITIVES):
        return value
    if isinstance(value, tuple):
        for item in value:
            if not isinstance(item, _PRIMITIVES):
                raise TypeError(
                    f"payload field {key!r}: tuple items must be primitives, "
                    f"got {type(item).__name__}"
                )
        return value
    if isinstance(value, list):
        return _check_value(key, tuple(value))
    raise TypeError(
        f"payload field {key!r}: bus payloads are primitives or flat tuples "
        f"(canonical rendering must be exact), got {type(value).__name__}"
    )


@dataclass(frozen=True)
class BusMessage:
    """One published record: ``(seq, time, topic, kind, payload)``.

    ``seq`` is assigned by the bus and is globally monotonic, so the full
    stream has one deterministic total order.  ``time`` is the service's
    *virtual* clock — wall-clock never appears in a message, which is what
    makes replay digests byte-stable.
    """

    seq: int
    time: float
    topic: str
    kind: str
    payload: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)

    @classmethod
    def make(cls, seq: int, time: float, topic: str, kind: str,
             payload: Dict[str, Any]) -> "BusMessage":
        items = tuple(
            (k, _check_value(k, v)) for k, v in sorted(payload.items())
        )
        return cls(seq=seq, time=time, topic=topic, kind=kind, payload=items)

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.payload:
            if k == key:
                return v
        return default

    @property
    def payload_dict(self) -> Dict[str, Any]:
        return dict(self.payload)

    def canonical(self) -> str:
        """Byte-exact one-line rendering (``repr`` pins floats to the bit)."""
        fields = ",".join(f"{k}={v!r}" for k, v in self.payload)
        return f"{self.seq}|{self.time!r}|{self.topic}|{self.kind}|{fields}"


def canonical_stream(messages: Iterable[BusMessage]) -> str:
    """The canonical rendering of a whole stream, one message per line."""
    return "\n".join(m.canonical() for m in messages)
