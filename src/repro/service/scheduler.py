"""The cluster scheduler: node-set leasing over one shared SimCluster.

Admission policy
----------------
* **FIFO first.**  The queue head is admitted as soon as its node request
  and its tenant's quotas allow.
* **Conservative backfill.**  When the head cannot start, its *reservation*
  is computed exactly — every active lease has a known virtual end time, so
  the earliest instant the head becomes admissible is a pure function of
  the lease table — and a younger job may jump ahead only if it fits in the
  free nodes *now* and its declared time budget ends at or before the
  head's reservation.  Budgets are enforced (a lease is terminated at its
  budget boundary), so a backfill can never push the head past its
  reservation: backfill never starves a FIFO-older job, by construction,
  and the soak harness re-checks it after the fact.
* **Per-tenant quotas.**  ``max_nodes`` (concurrent leased nodes),
  ``max_running`` (concurrent jobs), and ``max_queued`` (queue depth,
  enforced by the :class:`~repro.service.jobs.JobQueue`).  Violations raise
  :class:`~repro.service.errors.QuotaExceededError` — a typed error, never
  a silent drop.
* **Seeded tie-breaks.**  The only free choice left — *which* physical
  nodes a lease gets — is drawn from a ``random.Random(seed)`` stream
  consumed in decision order, so a given submission set always schedules
  identically, and two service instances with equal seeds produce
  byte-identical bus streams (the determinism invariant).

Slot accounting rides on the machine layer: a lease holds one CPU slot on
every leased node of the shared cluster
(:meth:`~repro.machine.cluster.SimCluster.acquire_slot`), so the chaos
leak checks (``repro.chaos.invariants``) apply verbatim — after a soak,
every slot count must be back to zero.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..machine.cluster import SimCluster
from .errors import AdmissionError, QuotaExceededError
from .jobs import Job, JobQueue, JobSpec

__all__ = ["TenantQuota", "Lease", "ClusterScheduler", "UNLIMITED"]

#: Sentinel meaning "no limit" for any quota dimension.
UNLIMITED: Optional[int] = None


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource limits (``None`` = unlimited)."""

    max_nodes: Optional[int] = None
    max_running: Optional[int] = None
    max_queued: Optional[int] = None


@dataclass
class Lease:
    """An exclusive node-set grant for one job's lifetime."""

    job_id: str
    tenant: str
    nodes: Tuple[int, ...]
    t_start: float
    t_end: Optional[float] = None     # set as soon as the job has executed
    backfilled: bool = False
    head_reservation: Optional[float] = None  # the head's reservation this
                                              # backfill promised to respect

    @property
    def width(self) -> int:
        return len(self.nodes)


_EPS = 1e-12


class ClusterScheduler:
    """Multiplexes admitted jobs onto a shared simulated cluster."""

    def __init__(
        self,
        cluster: SimCluster,
        seed: int = 0,
        default_quota: Optional[TenantQuota] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        predictor: Optional[Callable[[JobSpec], float]] = None,
    ):
        self.cluster = cluster
        self.seed = seed
        self.default_quota = default_quota or TenantQuota()
        self.quotas = dict(quotas or {})
        #: Optional static-makespan predictor (spec -> seconds).  When set,
        #: :meth:`effective_budget` tightens declared budgets with the
        #: prediction, so backfill plans against exact reservations instead
        #: of trusting whatever budget the tenant declared.
        self.predictor = predictor
        self._rng = random.Random(seed)
        self._free = set(range(len(cluster)))
        self.active: Dict[str, Lease] = {}
        self.history: List[Lease] = []
        #: job id -> tightest head reservation ever computed for it while it
        #: sat at the queue head (the no-starvation bound the soak checks).
        self.reservations: Dict[str, float] = {}
        self.grants = 0
        self.backfills = 0
        self.releases = 0

    # -- quotas ----------------------------------------------------------
    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def max_queued(self, tenant: str) -> Optional[int]:
        """Queue-depth limit hook for the :class:`JobQueue`."""
        return self.quota_for(tenant).max_queued

    def tenant_usage(self, tenant: str) -> Tuple[int, int]:
        """(leased nodes, running jobs) currently held by ``tenant``."""
        nodes = jobs = 0
        for lease in self.active.values():
            if lease.tenant == tenant:
                nodes += lease.width
                jobs += 1
        return nodes, jobs

    def effective_budget(self, spec: JobSpec) -> float:
        """The lease bound used for backfill planning *and* budget kills.

        Without a predictor this is exactly ``spec.time_budget`` (the
        historical behaviour).  With one, it is the declared budget
        tightened by the static prediction — both the planner and the
        enforcement use the same number, so a backfill promise is always
        kept by the kill that backs it.
        """
        budget = spec.time_budget
        if self.predictor is not None:
            try:
                predicted = self.predictor(spec)
            except Exception:
                return budget
            if predicted is not None and predicted > 0:
                budget = min(budget, predicted)
        return budget

    def check_request(self, spec: JobSpec) -> None:
        """Reject requests that can *never* be admitted, with typed errors."""
        if spec.nodes > len(self.cluster):
            raise AdmissionError(
                f"request for {spec.nodes} nodes exceeds the "
                f"{len(self.cluster)}-node cluster"
            )
        quota = self.quota_for(spec.tenant)
        if quota.max_nodes is not None and spec.nodes > quota.max_nodes:
            raise QuotaExceededError(
                spec.tenant, "nodes", quota.max_nodes, spec.nodes
            )

    def _admissible(self, job: Job, free: int, tenant_nodes: int,
                    tenant_jobs: int) -> bool:
        spec = job.spec
        if spec.nodes > free:
            return False
        quota = self.quota_for(spec.tenant)
        if quota.max_nodes is not None and \
                tenant_nodes + spec.nodes > quota.max_nodes:
            return False
        if quota.max_running is not None and tenant_jobs + 1 > quota.max_running:
            return False
        return True

    def admissible_now(self, job: Job) -> bool:
        nodes, jobs = self.tenant_usage(job.spec.tenant)
        return self._admissible(job, len(self._free), nodes, jobs)

    # -- reservations ----------------------------------------------------
    def reservation_time(self, job: Job, now: float) -> float:
        """Earliest instant ``job`` becomes admissible, given the current
        lease table.  Exact, not estimated: every active lease has a known
        virtual end time (its makespan, clipped to its budget)."""
        if self.admissible_now(job):
            return now
        free = len(self._free)
        tenant_nodes, tenant_jobs = self.tenant_usage(job.spec.tenant)
        pending = sorted(
            self.active.values(),
            key=lambda lease: (lease.t_end, lease.job_id),
        )
        for lease in pending:
            if lease.t_end is None:
                raise AdmissionError(
                    f"lease {lease.job_id} has no end time yet; reservation "
                    "is only computable between admissions"
                )
            free += lease.width
            if lease.tenant == job.spec.tenant:
                tenant_nodes -= lease.width
                tenant_jobs -= 1
            if self._admissible(job, free, tenant_nodes, tenant_jobs):
                return max(now, lease.t_end)
        raise AdmissionError(
            f"job {job.id} cannot be admitted even on an idle cluster "
            "(check_request should have rejected it)"
        )

    # -- admission -------------------------------------------------------
    def _next_admission(self, queue: JobQueue, now: float):
        """The single next job to admit at ``now`` per FIFO-with-backfill,
        or None.  Returns ``(job, backfilled, head_reservation)``."""
        pending = queue.pending
        if not pending:
            return None
        head = pending[0]
        if self.admissible_now(head):
            return head, False, None
        reservation = self.reservation_time(head, now)
        prior = self.reservations.get(head.id)
        if prior is None or reservation < prior:
            self.reservations[head.id] = reservation
        for job in pending[1:]:
            if not self.admissible_now(job):
                continue
            if now + self.effective_budget(job.spec) <= reservation + _EPS:
                return job, True, reservation
        return None

    def pump(
        self,
        queue: JobQueue,
        now: float,
        execute: Callable[[Job, Lease], float],
    ) -> List[Lease]:
        """Admit every job that may start at ``now``.

        ``execute(job, lease)`` runs the job (host-side) and returns the
        lease's virtual end time; the scheduler needs it recorded before
        the next admission decision, because reservations are computed from
        lease end times.
        """
        granted: List[Lease] = []
        while True:
            pick = self._next_admission(queue, now)
            if pick is None:
                break
            job, backfilled, reservation = pick
            queue.remove(job)
            lease = self.grant(job, now, backfilled, reservation)
            lease.t_end = execute(job, lease)
            granted.append(lease)
        return granted

    def grant(self, job: Job, now: float, backfilled: bool = False,
              head_reservation: Optional[float] = None) -> Lease:
        """Lease a node set to ``job``, acquiring one CPU slot per node.

        Node choice is the seeded tie-break: a deterministic sample from
        the free set, consumed in decision order.
        """
        spec = job.spec
        if not self.admissible_now(job):
            raise AdmissionError(
                f"grant for {job.id} with only {len(self._free)} free nodes "
                f"(or over quota)"
            )
        nodes = tuple(sorted(self._rng.sample(sorted(self._free), spec.nodes)))
        for index in nodes:
            self.cluster.acquire_slot(index)
        self._free.difference_update(nodes)
        lease = Lease(
            job_id=job.id, tenant=spec.tenant, nodes=nodes, t_start=now,
            backfilled=backfilled, head_reservation=head_reservation,
        )
        self.active[job.id] = lease
        self.grants += 1
        if backfilled:
            self.backfills += 1
        return lease

    def release(self, job_id: str) -> Lease:
        """Return a lease's nodes to the free pool and drop its slots."""
        lease = self.active.pop(job_id)
        for index in lease.nodes:
            self.cluster.release_slot(index)
        self._free.update(lease.nodes)
        self.history.append(lease)
        self.releases += 1
        return lease

    # -- accounting ------------------------------------------------------
    @property
    def free_nodes(self) -> Tuple[int, ...]:
        return tuple(sorted(self._free))

    def utilization(self, span: float) -> float:
        """Node-seconds leased over the cluster's capacity for ``span``."""
        if span <= 0:
            return 0.0
        booked = sum(
            (lease.t_end - lease.t_start) * lease.width
            for lease in self.history
            if lease.t_end is not None
        )
        return booked / (len(self.cluster) * span)
