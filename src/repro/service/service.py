"""SAGE-as-a-service: the long-running multi-job front end.

One :class:`SageService` owns a shared simulated cluster and multiplexes
many submitted designs onto it:

* :meth:`submit` is the async API — it validates, schedules the arrival,
  and returns a job id immediately; completion is observed through the
  :class:`~repro.service.bus.EventBus` (or :meth:`result` after
  :meth:`run`).
* The :class:`~repro.service.scheduler.ClusterScheduler` decides *when* and
  *where*: node-set leases with admission control, per-tenant quotas, FIFO
  order with conservative backfill, and seeded tie-breaks.
* Every lifecycle step publishes to the bus, and each finished job's probe
  telemetry is re-published under its own topic
  (``job.<id>.probes``) — consumers read the bus, never the runtimes.

Execution model (space-sharing)
-------------------------------
The shared cluster is the *allocation* substrate: a lease exclusively holds
one CPU slot per leased node, in the service's own virtual timeline.  The
job's computation itself runs at full fidelity on its partition — a private
:class:`~repro.machine.simulator.Environment` over ``spec.nodes`` processors
of the same platform — exactly as a standalone ``python -m repro run``
would.  Partitions are disjoint (the paper-era machines' crossbars
partition per board-set), so a job's virtual behaviour is *bitwise
identical* to its standalone run no matter what else is scheduled around
it; the soak harness proves that instead of assuming it, because shared
process state (caches, registries) is exactly where isolation regressions
would creep in.  The job's simulated makespan then becomes its lease
duration on the shared timeline, clipped to the spec's ``time_budget``
(overruns are terminated with a typed error — the bound that makes
conservative backfill starvation-free).
"""

from __future__ import annotations

import heapq
import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.admission import lint_job_spec
from ..analysis.cost import predict_makespan
from ..apps import benchmark_mapping
from ..core.codegen import generate_glue
from ..core.runtime import DEFAULT_CONFIG, SageRuntime
from ..core.runtime.policy import FaultPolicy
from ..core.runtime.probes import Trace
from ..machine import Environment, SimCluster, get_platform
from ..perf.cache import cache_scope, cache_stats, forget_scope
from .bus import EventBus
from .errors import (
    AdmissionRejected,
    JobFailedError,
    TimeBudgetExceeded,
    UnknownJobError,
)
from .jobs import Job, JobQueue, JobResult, JobSpec
from .messages import TOPIC_LEASES, TOPIC_QUEUE, job_topic
from .scheduler import ClusterScheduler, Lease, TenantQuota

__all__ = ["SageService", "ServiceStats", "run_standalone"]

#: Head-room multiplier on statically predicted makespans when the service
#: plans with exact reservations (``static_reservations=True``).  The
#: predictor tracks the simulator within a few percent on the paper
#: kernels; 1.5x absorbs model drift while still beating the default 5 s
#: declared budgets by orders of magnitude.
RESERVATION_SAFETY = 1.5


def run_standalone(spec: JobSpec, platform: str = "cspi"):
    """Execute a spec exactly as the service does, but alone: a private
    ``spec.nodes``-node cluster, no scheduler, no scopes.  The isolation
    invariant compares service runs against this reference."""
    spec.validate()
    model = spec.build_model()
    mapping = benchmark_mapping(model, spec.nodes)
    glue = generate_glue(model, mapping, num_processors=spec.nodes)
    env = Environment()
    cluster = SimCluster.from_platform(env, get_platform(platform), spec.nodes)
    runtime = SageRuntime(
        glue, cluster, config=DEFAULT_CONFIG.timing_only(),
        fault_policy=FaultPolicy.named(spec.policy),
    )
    result = runtime.run(iterations=spec.iterations)
    return result, env.events_processed


@dataclass(frozen=True)
class ServiceStats:
    """Aggregate figures for one service run (virtual + host time)."""

    submitted: int
    completed: int
    failed: int
    rejected: int
    pending: int
    backfills: int
    virtual_span: float
    utilization: float
    mean_wait: float
    max_wait: float
    executed: int
    wall_seconds: float

    @property
    def jobs_per_sec(self) -> float:
        """Sustained designs-compiled-and-simulated per host second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.executed / self.wall_seconds


class SageService:
    """A job queue + scheduler + bus over one shared simulated cluster."""

    def __init__(
        self,
        nodes: int = 8,
        platform: str = "cspi",
        seed: int = 0,
        default_quota: Optional[TenantQuota] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        bus: Optional[EventBus] = None,
        admission_lint: bool = True,
        static_reservations: bool = False,
    ):
        self.platform_name = platform
        self.platform = get_platform(platform)
        self.env = Environment()
        self.cluster = SimCluster.from_platform(self.env, self.platform, nodes)
        self.bus = bus if bus is not None else EventBus()
        self.scheduler = ClusterScheduler(
            self.cluster, seed=seed,
            default_quota=default_quota, quotas=quotas,
            predictor=self._predicted_budget if static_reservations else None,
        )
        self.admission_lint = admission_lint
        self.static_reservations = static_reservations
        self._lint_cache: Dict[Tuple, "object"] = {}
        self._predict_cache: Dict[Tuple, float] = {}
        self.queue = JobQueue(max_queued=self.scheduler.max_queued)
        self.jobs: Dict[str, Job] = {}
        self.now = 0.0
        self.wall_seconds = 0.0
        self.executed = 0
        self._heap: List[Tuple[float, int, str, Job]] = []
        self._evseq = 0
        self._idseq = 0

    # -- submission (the async API) --------------------------------------
    def submit(self, spec: JobSpec, at: Optional[float] = None) -> str:
        """Validate and enqueue a submission; returns its job id.

        Raises the typed errors for requests that can never run here
        (:class:`InvalidJobSpec`, :class:`AdmissionError`,
        :class:`QuotaExceededError` on a single request larger than the
        tenant's node quota, :class:`AdmissionRejected` when the static
        admission lint proves the design infeasible).  Arrival-time
        rejections (queue depth) are recorded on the job and re-raised by
        :meth:`result`.
        """
        spec.validate()
        self.scheduler.check_request(spec)
        if self.admission_lint:
            report = self.lint(spec)
            if not report.ok:
                raise AdmissionRejected(spec.fingerprint(), report)
        job = Job(id=f"j{self._idseq:05d}", spec=spec)
        self._idseq += 1
        self.jobs[job.id] = job
        arrival = self.now if at is None else max(at, self.now)
        job.submit_time = arrival
        self._push(arrival, "arrive", job)
        return job.id

    def lint(self, spec: JobSpec):
        """The admission-lint report for ``spec`` on *this* cluster (size
        and tenant quota included), memoized per spec content — the soak
        workload re-submits a bounded family of shapes, so each is linted
        once."""
        key = (spec.tenant, spec.app, spec.size, spec.nodes,
               spec.iterations, spec.data_seed, spec.time_budget)
        report = self._lint_cache.get(key)
        if report is None:
            report = lint_job_spec(
                spec, self.platform,
                cluster_nodes=len(self.cluster),
                quota=self.scheduler.quota_for(spec.tenant),
            )
            self._lint_cache[key] = report
        return report

    def _predicted_budget(self, spec: JobSpec) -> float:
        """Static-reservation hook: the predicted makespan (memoized per
        design) padded by :data:`RESERVATION_SAFETY`.  The scheduler takes
        ``min(declared budget, this)`` as the lease bound."""
        key = (spec.app, spec.size, spec.nodes, spec.data_seed,
               spec.iterations)
        predicted = self._predict_cache.get(key)
        if predicted is None:
            model = spec.build_model()
            mapping = benchmark_mapping(model, spec.nodes)
            predicted = predict_makespan(
                model, mapping, spec.nodes, self.platform,
                iterations=spec.iterations,
            ).makespan
            self._predict_cache[key] = predicted
        return RESERVATION_SAFETY * predicted

    def submit_batch(self, specs, start: float = 0.0,
                     spacing: float = 0.0) -> List[str]:
        """Submit many specs at ``start``, ``spacing`` apart (FIFO order)."""
        ids = []
        at = start
        for spec in specs:
            ids.append(self.submit(spec, at=at))
            at += spacing
        return ids

    # -- the event loop ---------------------------------------------------
    def _push(self, when: float, kind: str, job: Job) -> None:
        heapq.heappush(self._heap, (when, self._evseq, kind, job))
        self._evseq += 1

    def run(self) -> ServiceStats:
        """Drain the event loop: admit, execute, and complete every job.

        Deterministic: events are ordered by (virtual time, push sequence),
        and the only randomness is the scheduler's seeded tie-break stream.
        Returns the aggregate stats; individual outcomes via
        :meth:`result` / the bus.
        """
        t0 = _time.perf_counter()
        while self._heap:
            when, _, kind, job = heapq.heappop(self._heap)
            self.now = max(self.now, when)
            if kind == "arrive":
                self._arrive(job)
            elif kind == "release":
                self._release(job)
            self.scheduler.pump(self.queue, self.now, self._execute)
        self.wall_seconds += _time.perf_counter() - t0
        return self.stats()

    def _arrive(self, job: Job) -> None:
        spec = job.spec
        try:
            self.queue.enqueue(job)
        except Exception as exc:
            job.state = "rejected"
            job.error = exc
            job.end_time = self.now
            self.bus.publish(
                TOPIC_QUEUE, "rejected", time=self.now, job=job.id,
                tenant=spec.tenant, error=type(exc).__name__,
            )
            self.bus.publish(
                job_topic(job.id), "rejected", time=self.now, job=job.id,
                tenant=spec.tenant, error=type(exc).__name__, reason=str(exc),
            )
            return
        self.bus.publish(
            TOPIC_QUEUE, "enqueued", time=self.now, job=job.id,
            tenant=spec.tenant, app=spec.app, nodes=spec.nodes,
        )
        self.bus.publish(
            job_topic(job.id), "submitted", time=self.now, job=job.id,
            tenant=spec.tenant, app=spec.app, size=spec.size,
            nodes=spec.nodes, iterations=spec.iterations,
        )

    def _execute(self, job: Job, lease: Lease) -> float:
        """Scheduler callback: run the admitted job, return its lease end."""
        spec = job.spec
        job.state = "running"
        job.start_time = self.now
        job.lease_nodes = lease.nodes
        job.backfilled = lease.backfilled
        self.bus.publish(
            TOPIC_LEASES, "granted", time=self.now, job=job.id,
            tenant=spec.tenant, nodes=lease.nodes,
            backfilled=lease.backfilled,
        )
        self.bus.publish(
            job_topic(job.id), "started", time=self.now, job=job.id,
            tenant=spec.tenant, nodes=lease.nodes,
            backfilled=lease.backfilled,
        )
        self.executed += 1
        try:
            with cache_scope(job.id):
                model = spec.build_model()
                mapping = benchmark_mapping(model, spec.nodes)
                glue = generate_glue(model, mapping, num_processors=spec.nodes)
                env = Environment()
                cluster = SimCluster.from_platform(
                    env, self.platform, spec.nodes
                )
                runtime = SageRuntime(
                    glue, cluster, config=DEFAULT_CONFIG.timing_only(),
                    fault_policy=FaultPolicy.named(spec.policy),
                    trace=Trace(job=job.id), job_scope=job.id,
                )
                result = runtime.run(iterations=spec.iterations)
        except Exception as exc:
            job.state = "failed"
            job.error = JobFailedError(
                job.id, f"{type(exc).__name__}: {exc}"
            )
            job.end_time = self.now
            self._drop_scope(job)
            self._push(self.now, "release", job)
            return self.now

        traffic = cache_stats(job.id)
        hits = sum(row["hits"] for row in traffic.values())
        misses = sum(row["misses"] for row in traffic.values())
        job.result = JobResult(
            makespan=result.makespan,
            mean_latency=result.mean_latency,
            period=result.period,
            probe_events=len(result.trace),
            sim_events=env.events_processed,
            trace_digest=result.trace.digest(),
            cache_hits=hits,
            cache_misses=misses,
        )
        job._probe_counts = tuple(  # stashed for the telemetry message
            sorted(result.trace.counts_by_kind().items())
        )
        budget = self.scheduler.effective_budget(spec)
        if result.makespan > budget:
            job.state = "failed"
            job.error = TimeBudgetExceeded(
                job.id, budget, result.makespan
            )
            t_end = self.now + budget
        else:
            job.state = "completed"
            t_end = self.now + result.makespan
        job.end_time = t_end
        self._drop_scope(job)
        self._push(t_end, "release", job)
        return t_end

    def _drop_scope(self, job: Job) -> None:
        """Finished jobs stop owning cache entries (artifacts stay shared)."""
        forget_scope(job.id)

    def _release(self, job: Job) -> None:
        lease = self.scheduler.release(job.id)
        spec = job.spec
        if job.state == "completed":
            r = job.result
            self.bus.publish(
                job_topic(job.id), "completed", time=self.now, job=job.id,
                tenant=spec.tenant, makespan=r.makespan,
                mean_latency=r.mean_latency, trace_digest=r.trace_digest,
            )
        else:
            self.bus.publish(
                job_topic(job.id), "failed", time=self.now, job=job.id,
                tenant=spec.tenant,
                error=type(job.error).__name__ if job.error else "unknown",
            )
        if job.result is not None:
            counts = getattr(job, "_probe_counts", ())
            flat = tuple(x for pair in counts for x in pair)
            self.bus.publish(
                job_topic(job.id, "probes"), "telemetry", time=self.now,
                job=job.id, tenant=spec.tenant,
                events=job.result.probe_events,
                sim_events=job.result.sim_events,
                digest=job.result.trace_digest,
                kinds=flat,
            )
        self.bus.publish(
            TOPIC_LEASES, "released", time=self.now, job=job.id,
            tenant=spec.tenant, nodes=lease.nodes,
        )

    # -- results & accounting ---------------------------------------------
    def job(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise UnknownJobError(job_id) from None

    def result(self, job_id: str) -> JobResult:
        """The job's result; raises its typed error if it did not complete."""
        job = self.job(job_id)
        if job.error is not None:
            raise job.error
        if job.state != "completed" or job.result is None:
            raise JobFailedError(job_id, f"job is {job.state}, not completed")
        return job.result

    @property
    def idle(self) -> bool:
        return not self._heap and not self.queue and not self.scheduler.active

    def stats(self) -> ServiceStats:
        by_state: Dict[str, int] = {}
        waits = []
        for job in self.jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
            if job.wait_time is not None:
                waits.append(job.wait_time)
        span = max(
            (j.end_time for j in self.jobs.values() if j.end_time is not None),
            default=0.0,
        )
        return ServiceStats(
            submitted=len(self.jobs),
            completed=by_state.get("completed", 0),
            failed=by_state.get("failed", 0),
            rejected=by_state.get("rejected", 0),
            pending=by_state.get("queued", 0) + by_state.get("running", 0),
            backfills=self.scheduler.backfills,
            virtual_span=span,
            utilization=self.scheduler.utilization(span),
            mean_wait=sum(waits) / len(waits) if waits else 0.0,
            max_wait=max(waits) if waits else 0.0,
            executed=self.executed,
            wall_seconds=self.wall_seconds,
        )

    def check_clean(self) -> List:
        """Post-run machine hygiene, reusing the chaos leak checks: the
        shared cluster must hold zero slots with empty queues."""
        from ..chaos.invariants import check_quiescent

        violations = list(check_quiescent(self.env, self.cluster))
        if self.scheduler.active:
            from ..chaos.invariants import Violation

            violations.append(Violation(
                "no_leaked_slots",
                f"{len(self.scheduler.active)} lease(s) still active "
                "after the service drained",
            ))
        return violations
