"""The service soak harness: N-job mixed workloads and five invariants.

``python -m repro serve --soak --jobs 1000`` builds a seeded workload of
mixed FFT2D / corner-turn submissions from several tenants (including
deliberately over-quota ones), pushes it through one
:class:`~repro.service.service.SageService`, and then *proves* the run was
correct instead of eyeballing it:

1. **isolation** — every completed job's result quantities and probe-trace
   digest are bitwise identical to the same spec run standalone on a
   private cluster (references memoized by spec fingerprint).
2. **determinism** — replaying the identical workload + seed on a fresh
   service reproduces the admission order, every lease's node set, and the
   byte-exact event-bus stream digest.
3. **quota & no-starvation** — every rejection carries the typed quota
   error, no tenant ever holds more nodes than its quota concurrently, and
   no backfilled job pushed a FIFO-older job past its recorded reservation.
4. **zero leaked slots** — after the drain the shared cluster passes the
   chaos-harness quiescence check: every CPU slot free, nobody queued, no
   active leases (:func:`repro.chaos.invariants.check_quiescent` reused
   verbatim).
5. **telemetry consistency** — each executed job re-published exactly one
   probe-telemetry message, under its own topic only, whose digest matches
   the job's result; lifecycle message counts reconcile with job states.

The headline figure is **jobs/sec** — designs compiled *and* simulated per
host second, sustained across the soak — recorded into
``BENCH_simcore.json`` next to :data:`SERVICE_BASELINE` (the same harness
run on the tree that introduced it).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .jobs import JobSpec
from .scheduler import TenantQuota, _EPS
from .service import SageService, run_standalone

__all__ = [
    "SERVICE_BASELINE",
    "SoakReport",
    "default_quotas",
    "generate_workload",
    "run_soak",
]

#: Recorded on the tree that introduced the service (same harness,
#: ``--jobs 1000 --seed 7 --nodes 8``), for the embedded-baseline
#: comparison in BENCH_simcore.json.  Tracked stat, no hard gate: CI
#: shared runners are too noisy to fail on wall clock.
SERVICE_BASELINE = {
    "jobs": 1000,
    "nodes": 8,
    "seed": 7,
    "jobs_per_sec": 226.3,
    "machine": "x86_64",
}

#: The soak's tenant population.  ``burst`` is deliberately under-provisioned
#: (2-node ceiling, shallow queue) so quota rejections and queue-depth
#: rejections actually happen and invariant 3 has teeth.
SOAK_TENANTS = ("alpha", "beta", "gamma", "burst")


def default_quotas() -> Dict[str, TenantQuota]:
    return {
        "burst": TenantQuota(max_nodes=2, max_running=2, max_queued=4),
    }


#: (size, nodes) pairs satisfying the model constraints (power-of-two size,
#: size % nodes == 0) across the platform's 8 nodes.
_SHAPES = ((16, 1), (16, 2), (16, 4), (32, 2), (32, 4), (64, 4))

_APPS = ("fft2d", "corner_turn")
_POLICIES = ("fail_fast", "retry", "checkpoint_restart")

#: A minority of *cheap* jobs carry a tight virtual-time budget.  Tight
#: budgets are what let the conservative backfill planner slide a short job
#: in front of a blocked head: its bounded runtime provably fits inside the
#: head's reservation gap (gaps reach a few ms when 6-iteration
#: checkpointing jobs hold nodes; the cheap shapes finish in < 0.7 ms, so
#: the tight budget never kills them).
_TIGHT_BUDGET = 8e-4

#: A tiny budget no job can meet — a sprinkle of guaranteed overruns keeps
#: the TimeBudgetExceeded kill path exercised under soak.
_KILL_BUDGET = 1e-4


def generate_workload(
    count: int,
    seed: int,
    tenants: Sequence[str] = SOAK_TENANTS,
) -> List[Tuple[JobSpec, float]]:
    """Seeded mixed workload: ``count`` (spec, arrival_time) pairs.

    Everything is drawn from one ``random.Random(seed)`` stream, so equal
    (count, seed, tenants) always yields the identical workload — the
    determinism invariant replays exactly this.
    """
    rng = random.Random(seed)
    out: List[Tuple[JobSpec, float]] = []
    at = 0.0
    for _ in range(count):
        size, nodes = rng.choice(_SHAPES)
        app = rng.choice(_APPS)
        iterations = rng.choice((1, 2, 3, 6))
        cheap = (
            (app == "corner_turn" and size <= 32 and iterations <= 3)
            or (app == "fft2d" and size == 16 and iterations == 1)
        )
        roll = rng.random()
        if cheap and roll < 0.35:
            budget = _TIGHT_BUDGET
        elif roll > 0.98:
            budget = _KILL_BUDGET
        else:
            budget = 5.0
        spec = JobSpec(
            tenant=rng.choice(tuple(tenants)),
            app=app,
            size=size,
            nodes=nodes,
            iterations=iterations,
            policy=rng.choice(_POLICIES),
            time_budget=budget,
        )
        out.append((spec, at))
        # Mean inter-arrival well under the mean makespan: the queue builds,
        # admission control and backfill stay busy.
        at += rng.uniform(0.0, 0.0004)
    return out


@dataclass
class SoakReport:
    """Everything one soak run proved and measured."""

    jobs: int
    seed: int
    nodes: int
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    rejected_at_submit: int = 0
    backfills: int = 0
    budget_kills: int = 0
    jobs_per_sec: float = 0.0
    wall_seconds: float = 0.0
    virtual_span: float = 0.0
    utilization: float = 0.0
    mean_wait: float = 0.0
    max_wait: float = 0.0
    bus_messages: int = 0
    bus_digest: str = ""
    reference_runs: int = 0
    invariants: Dict[str, bool] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and all(self.invariants.values())

    def to_dict(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "seed": self.seed,
            "nodes": self.nodes,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "rejected_at_submit": self.rejected_at_submit,
            "backfills": self.backfills,
            "budget_kills": self.budget_kills,
            "jobs_per_sec": self.jobs_per_sec,
            "wall_seconds": self.wall_seconds,
            "virtual_span": self.virtual_span,
            "utilization": self.utilization,
            "mean_wait": self.mean_wait,
            "max_wait": self.max_wait,
            "bus_messages": self.bus_messages,
            "bus_digest": self.bus_digest,
            "reference_runs": self.reference_runs,
            "invariants": dict(self.invariants),
            "violations": list(self.violations),
            "ok": self.ok,
            "baseline": dict(SERVICE_BASELINE),
        }


def _build_service(nodes: int, seed: int) -> SageService:
    return SageService(nodes=nodes, seed=seed, quotas=default_quotas())


def _drive(svc: SageService,
           workload: Sequence[Tuple[JobSpec, float]]) -> Tuple[List[str], int]:
    """Submit the workload (tolerating typed submit-time rejections), run."""
    from .errors import ServiceError

    ids: List[str] = []
    rejected_at_submit = 0
    for spec, at in workload:
        try:
            ids.append(svc.submit(spec, at=at))
        except ServiceError:
            rejected_at_submit += 1
    svc.run()
    return ids, rejected_at_submit


# -- the five invariants ------------------------------------------------------

def check_isolation(
    svc: SageService,
    references: Optional[Dict[str, tuple]] = None,
) -> Tuple[List[str], int]:
    """Invariant 1: completed service jobs == their standalone runs, bitwise.

    ``references`` memoizes standalone reference runs by spec fingerprint
    across calls; returns (violations, reference_runs_executed).
    """
    refs = references if references is not None else {}
    fresh = 0
    out: List[str] = []
    for job in svc.jobs.values():
        if job.state != "completed" or job.result is None:
            continue
        key = job.spec.fingerprint()
        if key not in refs:
            result, sim_events = run_standalone(job.spec, svc.platform_name)
            refs[key] = (
                result.trace.digest(), result.makespan, result.mean_latency,
                result.period, len(result.trace), sim_events,
            )
            fresh += 1
        digest, makespan, latency, period, nprobes, nevents = refs[key]
        r = job.result
        checks = (
            ("trace_digest", r.trace_digest, digest),
            ("makespan", r.makespan, makespan),
            ("mean_latency", r.mean_latency, latency),
            ("period", r.period, period),
            ("probe_events", r.probe_events, nprobes),
            ("sim_events", r.sim_events, nevents),
        )
        for name, got, want in checks:
            if got != want:
                out.append(
                    f"isolation: {job.id} [{key}] {name} diverged from "
                    f"standalone: {got!r} != {want!r}"
                )
    return out, fresh


def check_determinism(
    first: SageService,
    workload: Sequence[Tuple[JobSpec, float]],
    nodes: int,
    seed: int,
) -> List[str]:
    """Invariant 2: a fresh service + same workload replays byte-identically."""
    replay = _build_service(nodes, seed)
    _drive(replay, workload)
    out: List[str] = []
    a, b = first.bus, replay.bus
    if a.digest() != b.digest():
        out.append(
            f"determinism: bus stream digest diverged on replay "
            f"({a.digest()[:12]} != {b.digest()[:12]})"
        )
        # Localise the first divergent message for the report.
        for i, (ma, mb) in enumerate(zip(a.history, b.history)):
            if ma.canonical() != mb.canonical():
                out.append(
                    f"determinism: first divergence at message {i}: "
                    f"{ma.canonical()!r} != {mb.canonical()!r}"
                )
                break
        else:
            out.append(
                f"determinism: stream lengths differ "
                f"({len(a.history)} != {len(b.history)})"
            )

    def grants(svc):
        return [
            (m.get("job"), m.get("nodes"))
            for m in svc.bus.history_for("scheduler.lease")
            if m.kind == "granted"
        ]

    ga, gb = grants(first), grants(replay)
    if ga != gb:
        out.append(
            "determinism: admission order / lease assignments diverged "
            f"(first difference at index "
            f"{next(i for i, (x, y) in enumerate(zip(ga, gb)) if x != y) if gb and ga else 0})"
        )
    return out


def check_quota_and_starvation(svc: SageService) -> List[str]:
    """Invariant 3: typed rejections, quota ceilings, reservation promises."""
    from .errors import QuotaExceededError

    out: List[str] = []
    for job in svc.jobs.values():
        if job.state == "rejected" and not isinstance(
                job.error, QuotaExceededError):
            out.append(
                f"quota: {job.id} rejected without the typed quota error "
                f"(got {type(job.error).__name__})"
            )
    # Concurrent node usage never exceeds the tenant ceiling: sweep the
    # lease history as +width/-width edges per tenant.
    for tenant in {l.tenant for l in svc.scheduler.history}:
        quota = svc.scheduler.quota_for(tenant)
        if quota.max_nodes is None:
            continue
        edges = []
        for lease in svc.scheduler.history:
            if lease.tenant != tenant:
                continue
            edges.append((lease.t_start, 1, lease.width))
            edges.append((lease.t_end, 0, -lease.width))
        width = peak = 0
        for _, _, delta in sorted(edges):  # releases sort before grants
            width += delta
            peak = max(peak, width)
        if peak > quota.max_nodes:
            out.append(
                f"quota: tenant {tenant!r} held {peak} nodes concurrently "
                f"(quota {quota.max_nodes})"
            )
    # No starvation: whenever the scheduler backfilled past a blocked head,
    # it recorded the head's reservation — the promise that backfill must
    # not delay it.  Every such job must have started by its promise.
    for job_id, promised in svc.scheduler.reservations.items():
        job = svc.jobs.get(job_id)
        if job is None or job.start_time is None:
            continue
        if job.start_time > promised + _EPS:
            out.append(
                f"starvation: {job_id} was promised a start by "
                f"{promised!r} but started at {job.start_time!r}"
            )
    return out


def check_slots(svc: SageService) -> List[str]:
    """Invariant 4: the shared cluster is quiescent — no leaked slots."""
    out = [str(v) for v in svc.check_clean()]
    census = svc.cluster.slot_census()
    held = {i: c for i, c in census.items() if c}
    if held:
        out.append(f"slots: census shows held slots after drain: {held}")
    return out


def check_telemetry(svc: SageService) -> List[str]:
    """Invariant 5: probe telemetry on the bus reconciles with job results."""
    out: List[str] = []
    stats = svc.stats()
    for job in svc.jobs.values():
        probes = svc.bus.history_for(f"job.{job.id}.probes")
        if job.result is not None:
            if len(probes) != 1:
                out.append(
                    f"telemetry: {job.id} published {len(probes)} probe "
                    "message(s), expected exactly 1"
                )
                continue
            msg = probes[0]
            if msg.get("job") != job.id:
                out.append(
                    f"telemetry: message under {job.id}'s topic names "
                    f"job {msg.get('job')!r} — cross-job contamination"
                )
            if msg.get("digest") != job.result.trace_digest:
                out.append(
                    f"telemetry: {job.id} bus digest != result digest"
                )
            if msg.get("events") != job.result.probe_events:
                out.append(
                    f"telemetry: {job.id} bus event count "
                    f"{msg.get('events')} != result {job.result.probe_events}"
                )
        elif probes:
            out.append(
                f"telemetry: {job.id} never produced a result but has "
                f"{len(probes)} probe message(s)"
            )
        # Lifecycle messages must only ever name their own job.
        for msg in svc.bus.history_for(f"job.{job.id}.*"):
            if msg.get("job") != job.id:
                out.append(
                    f"telemetry: {job.id}'s topic carries a message for "
                    f"{msg.get('job')!r}"
                )
    counts = svc.bus.counts_by_kind()
    recon = (
        ("started", stats.executed),
        ("completed", stats.completed),
    )
    for kind, want in recon:
        if counts.get(kind, 0) != want:
            out.append(
                f"telemetry: {counts.get(kind, 0)} {kind!r} messages on the "
                f"bus but service counted {want}"
            )
    return out


# -- the harness --------------------------------------------------------------

def run_soak(
    jobs: int = 1000,
    seed: int = 7,
    nodes: int = 8,
    replay: bool = True,
    isolation: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> SoakReport:
    """Drive one soak and evaluate the five invariants.

    ``replay=False`` / ``isolation=False`` skip the two expensive
    invariants (each re-executes work) — the smoke path for tests that
    only need the scheduler exercised.
    """
    say = progress or (lambda _line: None)
    report = SoakReport(jobs=jobs, seed=seed, nodes=nodes)
    workload = generate_workload(jobs, seed)
    svc = _build_service(nodes, seed)
    say(f"soak: submitting {jobs} jobs (seed={seed}, nodes={nodes})")
    _, rejected_at_submit = _drive(svc, workload)
    stats = svc.stats()

    from .errors import TimeBudgetExceeded

    report.submitted = stats.submitted
    report.completed = stats.completed
    report.failed = stats.failed
    report.rejected = stats.rejected
    report.rejected_at_submit = rejected_at_submit
    report.backfills = stats.backfills
    report.budget_kills = sum(
        1 for j in svc.jobs.values()
        if isinstance(j.error, TimeBudgetExceeded)
    )
    report.jobs_per_sec = stats.jobs_per_sec
    report.wall_seconds = stats.wall_seconds
    report.virtual_span = stats.virtual_span
    report.utilization = stats.utilization
    report.mean_wait = stats.mean_wait
    report.max_wait = stats.max_wait
    report.bus_messages = len(svc.bus.history)
    report.bus_digest = svc.bus.digest()
    say(
        f"soak: {report.completed} completed, {report.failed} failed, "
        f"{report.rejected + rejected_at_submit} rejected, "
        f"{report.backfills} backfills — "
        f"{report.jobs_per_sec:.1f} jobs/sec"
    )

    if isolation:
        say("soak: invariant 1/5 — isolation vs standalone references")
        violations, refs = check_isolation(svc)
        report.reference_runs = refs
        report.invariants["isolation"] = not violations
        report.violations += violations
    if replay:
        say("soak: invariant 2/5 — determinism replay")
        violations = check_determinism(svc, workload, nodes, seed)
        report.invariants["determinism"] = not violations
        report.violations += violations

    say("soak: invariants 3-5/5 — quotas, slots, telemetry")
    for name, check in (
        ("quota_no_starvation", check_quota_and_starvation),
        ("zero_leaked_slots", check_slots),
        ("telemetry", check_telemetry),
    ):
        violations = check(svc)
        report.invariants[name] = not violations
        report.violations += violations

    say(f"soak: {'PASS' if report.ok else 'FAIL'} "
        f"({sum(report.invariants.values())}/{len(report.invariants)} "
        "invariants hold)")
    return report
