"""Seeded-defect corpus for the SAGE Verifier.

One deliberately broken artifact per analysis rule, each annotated with the
rule id it must trigger and where.  The test modules sweep this corpus and
assert every seed is caught — and that the clean FFT2D / corner-turn apps
trigger nothing (zero false positives).
"""

from repro.analysis.comm import CommOp, CommSchedule
from repro.core.model import (
    ApplicationModel,
    DataType,
    FunctionBlock,
    Mapping,
    REPLICATED,
    striped,
)

# ---------------------------------------------------------------------------
# Alter lint seeds: (seed name, script source, expected rule, where fragment)
# ---------------------------------------------------------------------------

LINT_SEEDS = [
    (
        "unclosed-paren",
        "(define x (car",
        "ALT000",
        ":1:",
    ),
    (
        "unbound-symbol",
        "(emit-line (lenght (function-instances model)))",
        "ALT001",
        ":1:13",
    ),
    (
        "builtin-arity",
        "(emit-line (cons 1))",
        "ALT002",
        ":1:13",
    ),
    (
        "user-arity",
        "(define (pair a b) (cons a b))\n(emit-line (pair 1 2 3))",
        "ALT002",
        ":2:13",
    ),
    (
        "unused-define",
        "(define never-used 42)\n(emit-line 1)",
        "ALT003",
        ":1:1",
    ),
    (
        "shadowed-builtin",
        "(define (f length) length)\n(emit-line (f 3))",
        "ALT004",
        ":1:",
    ),
    (
        "shadowed-outer",
        "(let ((x 1)) (let ((x 2)) (emit-line x)))",
        "ALT004",
        ":1:20",
    ),
    (
        "unreachable-if",
        '(if #f (emit-line "dead") (emit-line "live"))',
        "ALT005",
        ":1:8",
    ),
    (
        "unreachable-cond",
        '(cond (#t (emit-line "always")) ((car (list 1)) (emit-line "never")))',
        "ALT005",
        ":1:33",
    ),
    (
        "malformed-define",
        "(define)",
        "ALT006",
        ":1:1",
    ),
    (
        "malformed-set",
        "(set! 3 4)",
        "ALT006",
        ":1:1",
    ),
    (
        "constant-call",
        "(emit-line (true))",
        "ALT002",
        ":1:13",
    ),
]

#: Scripts that must lint perfectly clean (no errors, no warnings).
LINT_CLEAN = [
    (
        "clean-traversal",
        "\n".join(
            [
                "(define (describe inst)",
                "  (string-append (instance-path inst) \"/\"",
                "                 (number->string (instance-threads inst))))",
                "(for-each (lambda (inst) (emit-line (describe inst)))",
                "          (function-instances model))",
            ]
        ),
    ),
    (
        "clean-let-loop",
        "(let loop ((i 0)) (when (< i nprocs) (emit-line i) (loop (+ i 1))))",
    ),
]


# ---------------------------------------------------------------------------
# Communication-schedule seeds
# ---------------------------------------------------------------------------


def ring_deadlock_schedule() -> CommSchedule:
    """Every rank receives from its left neighbour before sending right —
    the classic head-to-head exchange deadlock (ISSUE acceptance case)."""
    nprocs = 3
    ops = {}
    for r in range(nprocs):
        left = (r - 1) % nprocs
        right = (r + 1) % nprocs
        ops[r] = [
            CommOp("recv", peer=left, tag=0, where=f"ring arc {left}->{r}"),
            CommOp("send", peer=right, tag=0, where=f"ring arc {r}->{right}"),
        ]
    return CommSchedule(nprocs=nprocs, ops=ops, model_name="ring")


def unmatched_recv_schedule() -> CommSchedule:
    return CommSchedule(
        nprocs=2,
        ops={0: [CommOp("recv", peer=1, tag=5, where="phantom arc")], 1: []},
        model_name="unmatched",
    )


def participant_mismatch_schedule() -> CommSchedule:
    return CommSchedule(
        nprocs=3,
        ops={
            0: [CommOp("coll", tag=7, participants=(0, 1), where="corner turn")],
            1: [CommOp("coll", tag=7, participants=(0, 1, 2), where="corner turn")],
            2: [],
        },
        model_name="mismatch",
    )


def missing_participant_schedule() -> CommSchedule:
    return CommSchedule(
        nprocs=3,
        ops={
            0: [CommOp("coll", tag=2, participants=(0, 1, 2), where="corner turn")],
            1: [CommOp("coll", tag=2, participants=(0, 1, 2), where="corner turn")],
            2: [],
        },
        model_name="missing",
    )


def leaked_send_schedule() -> CommSchedule:
    return CommSchedule(
        nprocs=2,
        ops={0: [CommOp("send", peer=1, tag=3, where="dangling arc")], 1: []},
        model_name="leak",
    )


def tag_mismatch_schedule() -> CommSchedule:
    return CommSchedule(
        nprocs=2,
        ops={
            0: [CommOp("send", peer=1, tag=3, where="mistagged arc")],
            1: [CommOp("recv", peer=0, tag=9, where="mistagged arc")],
        },
        model_name="tags",
    )


COMM_SEEDS = [
    ("ring-deadlock", ring_deadlock_schedule, "COMM001"),
    ("unmatched-recv", unmatched_recv_schedule, "COMM002"),
    ("participant-mismatch", participant_mismatch_schedule, "COMM003"),
    ("missing-participant", missing_participant_schedule, "COMM003"),
    ("leaked-send", leaked_send_schedule, "COMM004"),
    ("tag-mismatch", tag_mismatch_schedule, "COMM005"),
]


def cyclic_exchange_model():
    """A two-function model whose dataflow is a cycle: each side receives
    before it sends, so the derived schedule deadlocks head-to-head."""
    t = DataType("m", "float32", (8, 8))
    app = ApplicationModel("cyclic_exchange")
    a = app.add_block(FunctionBlock("a", kernel="relax"))
    a.add_in("in", t, REPLICATED)
    a.add_out("out", t, REPLICATED)
    b = app.add_block(FunctionBlock("b", kernel="relax"))
    b.add_in("in", t, REPLICATED)
    b.add_out("out", t, REPLICATED)
    app.connect(a.port("out"), b.port("in"))
    app.connect(b.port("out"), a.port("in"))
    mapping = Mapping()
    mapping.assign(0, 0, 0)
    mapping.assign(1, 0, 1)
    return app, mapping, 2


# ---------------------------------------------------------------------------
# Buffer-hazard seeds: (seed name, kwargs for make_spec/check, expected rule)
# ---------------------------------------------------------------------------


def make_spec(**overrides) -> dict:
    """A valid 8x8 float32 striped->replicated spec; overrides seed defects."""
    spec = {
        "id": 0,
        "name": "writer.out->reader.in",
        "shape": (8, 8),
        "dtype": "float32",
        "elem_bytes": 4,
        "total_bytes": 8 * 8 * 4,
        "src_function": 0,
        "dst_function": 1,
        "src_port": "out",
        "dst_port": "in",
        "src_striping": {"kind": "striped", "axis": 0, "block": 1},
        "dst_striping": {"kind": "replicated", "axis": 0, "block": 1},
        "src_threads": 4,
        "dst_threads": 2,
    }
    spec.update(overrides)
    return spec


BUFFER_SEEDS = [
    (
        "inconsistent-bytes",
        make_spec(total_bytes=17),
        "BUF201",
    ),
    (
        "axis-out-of-range",
        make_spec(src_striping={"kind": "striped", "axis": 5, "block": 1}),
        "BUF201",
    ),
    (
        "write-write-overlap",
        make_spec(
            src_threads=2,
            src_regions=[[(0, 5), (0, 8)], [(3, 8), (0, 8)]],
        ),
        "BUF202",
    ),
    (
        "uncovered-read",
        make_spec(
            src_threads=2,
            src_regions=[[(0, 3), (0, 8)], [(5, 8), (0, 8)]],
        ),
        "BUF203",
    ),
    (
        "starved-reader",
        make_spec(
            dst_threads=3,
            dst_regions=[[(0, 8), (0, 8)], [(0, 8), (0, 8)], [(0, 0), (0, 8)]],
        ),
        "BUF205",
    ),
]
