"""Seeded-defect corpus for the SAGE Verifier.

One deliberately broken artifact per analysis rule, each annotated with the
rule id it must trigger and where.  The test modules sweep this corpus and
assert every seed is caught — and that the clean FFT2D / corner-turn apps
trigger nothing (zero false positives).
"""

from repro.analysis.comm import CommOp, CommSchedule
from repro.analysis.recon import (
    plan_grow_transition,
    plan_migration_transition,
    plan_shrink_transition,
)
from repro.apps.models import fft2d_model
from repro.core.model import (
    ApplicationModel,
    DataType,
    FunctionBlock,
    Mapping,
    REPLICATED,
    round_robin_mapping,
    striped,
)
from repro.service.jobs import JobSpec
from repro.service.scheduler import TenantQuota

# ---------------------------------------------------------------------------
# Alter lint seeds: (seed name, script source, expected rule, where fragment)
# ---------------------------------------------------------------------------

LINT_SEEDS = [
    (
        "unclosed-paren",
        "(define x (car",
        "ALT000",
        ":1:",
    ),
    (
        "unbound-symbol",
        "(emit-line (lenght (function-instances model)))",
        "ALT001",
        ":1:13",
    ),
    (
        "builtin-arity",
        "(emit-line (cons 1))",
        "ALT002",
        ":1:13",
    ),
    (
        "user-arity",
        "(define (pair a b) (cons a b))\n(emit-line (pair 1 2 3))",
        "ALT002",
        ":2:13",
    ),
    (
        "unused-define",
        "(define never-used 42)\n(emit-line 1)",
        "ALT003",
        ":1:1",
    ),
    (
        "shadowed-builtin",
        "(define (f length) length)\n(emit-line (f 3))",
        "ALT004",
        ":1:",
    ),
    (
        "shadowed-outer",
        "(let ((x 1)) (let ((x 2)) (emit-line x)))",
        "ALT004",
        ":1:20",
    ),
    (
        "unreachable-if",
        '(if #f (emit-line "dead") (emit-line "live"))',
        "ALT005",
        ":1:8",
    ),
    (
        "unreachable-cond",
        '(cond (#t (emit-line "always")) ((car (list 1)) (emit-line "never")))',
        "ALT005",
        ":1:33",
    ),
    (
        "malformed-define",
        "(define)",
        "ALT006",
        ":1:1",
    ),
    (
        "malformed-set",
        "(set! 3 4)",
        "ALT006",
        ":1:1",
    ),
    (
        "constant-call",
        "(emit-line (true))",
        "ALT002",
        ":1:13",
    ),
]

#: Scripts that must lint perfectly clean (no errors, no warnings).
LINT_CLEAN = [
    (
        "clean-traversal",
        "\n".join(
            [
                "(define (describe inst)",
                "  (string-append (instance-path inst) \"/\"",
                "                 (number->string (instance-threads inst))))",
                "(for-each (lambda (inst) (emit-line (describe inst)))",
                "          (function-instances model))",
            ]
        ),
    ),
    (
        "clean-let-loop",
        "(let loop ((i 0)) (when (< i nprocs) (emit-line i) (loop (+ i 1))))",
    ),
]


# ---------------------------------------------------------------------------
# Communication-schedule seeds
# ---------------------------------------------------------------------------


def ring_deadlock_schedule() -> CommSchedule:
    """Every rank receives from its left neighbour before sending right —
    the classic head-to-head exchange deadlock (ISSUE acceptance case)."""
    nprocs = 3
    ops = {}
    for r in range(nprocs):
        left = (r - 1) % nprocs
        right = (r + 1) % nprocs
        ops[r] = [
            CommOp("recv", peer=left, tag=0, where=f"ring arc {left}->{r}"),
            CommOp("send", peer=right, tag=0, where=f"ring arc {r}->{right}"),
        ]
    return CommSchedule(nprocs=nprocs, ops=ops, model_name="ring")


def unmatched_recv_schedule() -> CommSchedule:
    return CommSchedule(
        nprocs=2,
        ops={0: [CommOp("recv", peer=1, tag=5, where="phantom arc")], 1: []},
        model_name="unmatched",
    )


def participant_mismatch_schedule() -> CommSchedule:
    return CommSchedule(
        nprocs=3,
        ops={
            0: [CommOp("coll", tag=7, participants=(0, 1), where="corner turn")],
            1: [CommOp("coll", tag=7, participants=(0, 1, 2), where="corner turn")],
            2: [],
        },
        model_name="mismatch",
    )


def missing_participant_schedule() -> CommSchedule:
    return CommSchedule(
        nprocs=3,
        ops={
            0: [CommOp("coll", tag=2, participants=(0, 1, 2), where="corner turn")],
            1: [CommOp("coll", tag=2, participants=(0, 1, 2), where="corner turn")],
            2: [],
        },
        model_name="missing",
    )


def leaked_send_schedule() -> CommSchedule:
    return CommSchedule(
        nprocs=2,
        ops={0: [CommOp("send", peer=1, tag=3, where="dangling arc")], 1: []},
        model_name="leak",
    )


def tag_mismatch_schedule() -> CommSchedule:
    return CommSchedule(
        nprocs=2,
        ops={
            0: [CommOp("send", peer=1, tag=3, where="mistagged arc")],
            1: [CommOp("recv", peer=0, tag=9, where="mistagged arc")],
        },
        model_name="tags",
    )


COMM_SEEDS = [
    ("ring-deadlock", ring_deadlock_schedule, "COMM001"),
    ("unmatched-recv", unmatched_recv_schedule, "COMM002"),
    ("participant-mismatch", participant_mismatch_schedule, "COMM003"),
    ("missing-participant", missing_participant_schedule, "COMM003"),
    ("leaked-send", leaked_send_schedule, "COMM004"),
    ("tag-mismatch", tag_mismatch_schedule, "COMM005"),
]


def cyclic_exchange_model():
    """A two-function model whose dataflow is a cycle: each side receives
    before it sends, so the derived schedule deadlocks head-to-head."""
    t = DataType("m", "float32", (8, 8))
    app = ApplicationModel("cyclic_exchange")
    a = app.add_block(FunctionBlock("a", kernel="relax"))
    a.add_in("in", t, REPLICATED)
    a.add_out("out", t, REPLICATED)
    b = app.add_block(FunctionBlock("b", kernel="relax"))
    b.add_in("in", t, REPLICATED)
    b.add_out("out", t, REPLICATED)
    app.connect(a.port("out"), b.port("in"))
    app.connect(b.port("out"), a.port("in"))
    mapping = Mapping()
    mapping.assign(0, 0, 0)
    mapping.assign(1, 0, 1)
    return app, mapping, 2


# ---------------------------------------------------------------------------
# Buffer-hazard seeds: (seed name, kwargs for make_spec/check, expected rule)
# ---------------------------------------------------------------------------


def make_spec(**overrides) -> dict:
    """A valid 8x8 float32 striped->replicated spec; overrides seed defects."""
    spec = {
        "id": 0,
        "name": "writer.out->reader.in",
        "shape": (8, 8),
        "dtype": "float32",
        "elem_bytes": 4,
        "total_bytes": 8 * 8 * 4,
        "src_function": 0,
        "dst_function": 1,
        "src_port": "out",
        "dst_port": "in",
        "src_striping": {"kind": "striped", "axis": 0, "block": 1},
        "dst_striping": {"kind": "replicated", "axis": 0, "block": 1},
        "src_threads": 4,
        "dst_threads": 2,
    }
    spec.update(overrides)
    return spec


# ---------------------------------------------------------------------------
# Reconfiguration-safety seeds: (name, factory, expected rule).  Each factory
# returns (app, transition, nprocs); the transition is tampered the way a
# buggy reconfiguration engine would get it wrong, and must trigger *exactly*
# the annotated rule.
# ---------------------------------------------------------------------------


def _chain_model(c1_proc: int):
    """A 1-thread producer striped into a 2-thread consumer: the smallest
    model where moving one consumer thread flips exactly one message's
    locality (what the RECON002/003 delta check needs to notice)."""
    t = DataType("m", "float32", (8, 8))
    app = ApplicationModel("chain")
    p = app.add_block(FunctionBlock("p", kernel="relax"))
    p.add_out("out", t, striped(0))
    c = app.add_block(FunctionBlock("c", kernel="relax", threads=2))
    c.add_in("in", t, striped(0))
    app.connect(p.port("out"), c.port("in"))
    mapping = Mapping()
    mapping.assign(0, 0, 0)
    mapping.assign(1, 0, 0)
    mapping.assign(1, 1, c1_proc)
    return app, mapping


def recon_stranded_thread():
    """The transition's active set omits a processor that still owns a
    thread — its elements would never be computed again."""
    app, mapping = _chain_model(c1_proc=1)
    transition = plan_migration_transition(app, mapping, {(1, 1): 1})
    transition.active = {0}
    return app, transition, 2


def recon_orphaned_send():
    """A colocated consumer thread moves remote, but the engine's moved set
    forgot it: the delta-composed traffic table misses the new remote
    send (it would never be staged)."""
    app, mapping = _chain_model(c1_proc=0)
    transition = plan_migration_transition(app, mapping, {(1, 1): 1})
    transition.moved = set()
    return app, transition, 2


def recon_duplicated_send():
    """The inverse defect: a remote consumer thread moves home, the moved
    set forgot it, and the stale table still carries the now-local send."""
    app, mapping = _chain_model(c1_proc=1)
    transition = plan_migration_transition(app, mapping, {(1, 1): 0})
    transition.moved = set()
    return app, transition, 2


def recon_lost_checkpoint():
    """A shrink plan that dropped one of the checkpoint-migration transfers
    the restripe needs: state on the dead node would be lost."""
    app = fft2d_model(64, nodes=4)
    mapping = round_robin_mapping(app, 4)
    transition = plan_shrink_transition(app, mapping, survivors=[0, 1, 2])
    transition.transfers = transition.transfers[1:]
    return app, transition, 4


def recon_double_shipped():
    """A migration plan that ships the same region twice (a retry bug):
    harmless for correctness but doubles the reconfiguration traffic."""
    app, mapping = _chain_model(c1_proc=1)
    transition = plan_migration_transition(app, mapping, {(1, 1): 0})
    transition.transfers = transition.transfers + transition.transfers[:1]
    return app, transition, 2


def recon_deadlocked_after():
    """A (vacuous) migration over the cyclic-exchange model: the
    post-transition schedule deadlocks head-to-head, so the transition
    must not be taken even though the mapping arithmetic is fine."""
    app, mapping, nprocs = cyclic_exchange_model()
    transition = plan_migration_transition(app, mapping, {})
    return app, transition, nprocs


RECON_SEEDS = [
    ("stranded-thread", recon_stranded_thread, "RECON001"),
    ("orphaned-send", recon_orphaned_send, "RECON002"),
    ("duplicated-send", recon_duplicated_send, "RECON003"),
    ("lost-checkpoint", recon_lost_checkpoint, "RECON004"),
    ("double-shipped", recon_double_shipped, "RECON005"),
    ("deadlocked-after", recon_deadlocked_after, "RECON006"),
]


def recon_clean_shrink():
    app = fft2d_model(64, nodes=4)
    mapping = round_robin_mapping(app, 4)
    return app, plan_shrink_transition(app, mapping, survivors=[0, 1, 2]), 4


def recon_clean_grow():
    app = fft2d_model(64, nodes=4)
    mapping = round_robin_mapping(app, 4)
    shrunk = plan_shrink_transition(app, mapping, survivors=[0, 1, 2])
    return app, plan_grow_transition(app, shrunk.after, mapping, {3: 3}), 4


def recon_clean_migration():
    app, mapping = _chain_model(c1_proc=0)
    return app, plan_migration_transition(app, mapping, {(1, 1): 1}), 2


#: Transitions the planners produce unmolested: zero findings expected.
RECON_CLEAN = [
    ("clean-shrink", recon_clean_shrink),
    ("clean-grow", recon_clean_grow),
    ("clean-migration", recon_clean_migration),
]


# ---------------------------------------------------------------------------
# Cost-predictor seeds: (name, factory, expected rule).  Factories return
# (app, mapping, nprocs, budget); the expected rule must be *present* (cost
# findings are advisory, so co-findings like PERF004 are legitimate).
# ---------------------------------------------------------------------------


def perf_piled_mapping():
    """Every thread piled onto processor 0 of a 4-node lease: textbook
    compute imbalance."""
    app = fft2d_model(64, nodes=4)
    return app, round_robin_mapping(app, 1), 4, None


def perf_hot_link():
    """A 1-thread source fanning a 4 MB replicated buffer out to seven
    remote readers: the source's inject port saturates the iteration."""
    t = DataType("big", "float32", (512, 512))
    app = ApplicationModel("fanout")
    src = app.add_block(FunctionBlock("src", kernel="relax"))
    src.add_out("out", t, REPLICATED)
    dst = app.add_block(FunctionBlock("dst", kernel="relax", threads=8))
    dst.add_in("in", t, REPLICATED)
    app.connect(src.port("out"), dst.port("in"))
    mapping = Mapping()
    mapping.assign(0, 0, 0)
    for thread in range(8):
        mapping.assign(1, thread, thread)
    return app, mapping, 8, None


def perf_blown_budget():
    app = fft2d_model(64, nodes=4)
    return app, round_robin_mapping(app, 4), 4, 1e-6


def perf_idle_lease():
    """A 2-processor mapping analyzed against a 4-node lease: half the
    leased capacity holds no work."""
    app = fft2d_model(64, nodes=2)
    return app, round_robin_mapping(app, 2), 4, None


PERF_SEEDS = [
    ("piled-mapping", perf_piled_mapping, "PERF001"),
    ("hot-link", perf_hot_link, "PERF002"),
    ("blown-budget", perf_blown_budget, "PERF003"),
    ("idle-lease", perf_idle_lease, "PERF004"),
]


# ---------------------------------------------------------------------------
# Admission-lint seeds: (name, spec, lint kwargs, expected rule).  Specs are
# linted directly (no service needed); each must trigger exactly its rule.
# ---------------------------------------------------------------------------

JOB_SEEDS = [
    (
        "cluster-overflow",
        JobSpec(app="fft2d", size=16, nodes=16),
        {"cluster_nodes": 8},
        "JOB001",
    ),
    (
        "dram-overflow",
        JobSpec(app="fft2d", size=4096, nodes=2),
        {"cluster_nodes": 8},
        "JOB002",
    ),
    (
        "quota-infeasible",
        JobSpec(app="fft2d", size=16, nodes=4, tenant="burst"),
        {"cluster_nodes": 8,
         "quota": TenantQuota(max_nodes=2, max_running=2, max_queued=4)},
        "JOB003",
    ),
    (
        "unbuildable-design",
        JobSpec(app="fft2d", size=16, nodes=3),
        {"cluster_nodes": 8},
        "JOB004",
    ),
    (
        "doomed-budget",
        JobSpec(app="fft2d", size=64, nodes=4, iterations=6,
                time_budget=1e-4),
        {"cluster_nodes": 8},
        "JOB005",
    ),
]

#: JOB005 is advisory (the soak deliberately submits tight budgets to
#: exercise the kill path), so the service must still *admit* that seed.
JOB_WARNING_RULES = {"JOB005"}


BUFFER_SEEDS = [
    (
        "inconsistent-bytes",
        make_spec(total_bytes=17),
        "BUF201",
    ),
    (
        "axis-out-of-range",
        make_spec(src_striping={"kind": "striped", "axis": 5, "block": 1}),
        "BUF201",
    ),
    (
        "write-write-overlap",
        make_spec(
            src_threads=2,
            src_regions=[[(0, 5), (0, 8)], [(3, 8), (0, 8)]],
        ),
        "BUF202",
    ),
    (
        "uncovered-read",
        make_spec(
            src_threads=2,
            src_regions=[[(0, 3), (0, 8)], [(5, 8), (0, 8)]],
        ),
        "BUF203",
    ),
    (
        "starved-reader",
        make_spec(
            dst_threads=3,
            dst_regions=[[(0, 8), (0, 8)], [(0, 8), (0, 8)], [(0, 0), (0, 8)]],
        ),
        "BUF205",
    ),
]
