"""Golden-trace scenarios: canonical runs whose virtual-time behaviour is pinned.

The simulator fast path (PR 4) promises *bit-identical* virtual results: any
refactor of the event core, the MPI layer, or the run-time kernel must leave
the probe traces and every simulated timestamp unchanged.  This module defines
a small set of canonical scenarios — the two Table 1.0 workloads, with the
fault layer armed and unarmed — and renders each run to a byte-exact canonical
form whose SHA-256 digest is committed in ``tests/golden/golden_traces.json``.

Regenerate (only when a change *intentionally* alters virtual-time behaviour,
and say so in the commit message)::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_traces.py

Determinism notes
-----------------
* ``repr(float)`` round-trips exactly, so digests pin timestamps to the bit.
* Fault sampling is seeded through :class:`~repro.machine.faults.FaultPlan`,
  so the armed scenarios are as deterministic as the clean ones.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Callable, Dict, Optional

from repro.apps import (
    benchmark_mapping,
    corner_turn_model,
    fft2d_model,
    fft2d_slack_model,
)
from repro.core.codegen import generate_glue
from repro.core.runtime import DEFAULT_CONFIG, SageRuntime
from repro.core.runtime.policy import FaultPolicy
from repro.machine import Environment, SimCluster, get_platform
from repro.machine.faults import FaultPlan

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "golden_traces.json")

_BUILDERS = {
    "fft2d": fft2d_model,
    "corner_turn": corner_turn_model,
    # Striping slack (28 threads > 8 nodes) so a straggler drain re-deals
    # threads onto under-loaded peers; `nodes` is fixed by the scenario.
    "fft2d_slack": lambda n, _nodes: fft2d_slack_model(n, 28),
}


def _clean_plan(_nodes: int) -> Optional[FaultPlan]:
    return None


def _crash_plan(_nodes: int) -> FaultPlan:
    """A transient crash mid-run; checkpoint_restart replays the iteration."""
    plan = FaultPlan(seed=7)
    plan.crash_node(1, at=0.002)
    return plan


def _lossy_plan(_nodes: int) -> FaultPlan:
    """Seeded message loss plus a degraded link; the retry policy re-sends."""
    plan = FaultPlan(seed=11)
    plan.message_loss(0.05)
    plan.degrade_link(0, 2, at=0.001, factor=0.5)
    return plan


def _rejoin_plan(_nodes: int) -> FaultPlan:
    """The full elastic cycle: a permanent crash, then a same-slot
    replacement powering on; grow_restripe detects, shrinks, runs degraded,
    admits the replacement, and migrates the moved threads back."""
    plan = FaultPlan(seed=13)
    plan.crash_node(5, at=0.0005, permanent=True)
    plan.join_node(5, at=0.0015)
    return plan


def _straggler_plan(_nodes: int) -> FaultPlan:
    """A gray failure that heals: node 3 limps at quarter speed for a few
    iterations, then recovers; migrate_stragglers drains its threads to the
    healthy peers and restores them once probes read normal again."""
    plan = FaultPlan(seed=17)
    plan.slow_node(3, at=0.0005, factor=0.25, duration=0.008)
    return plan


#: name -> (app, n, nodes, iterations, plan factory, policy factory)
SCENARIOS: Dict[str, tuple] = {
    "fft2d_4n_clean": ("fft2d", 64, 4, 3, _clean_plan, lambda: None),
    "cornerturn_4n_clean": ("corner_turn", 64, 4, 3, _clean_plan, lambda: None),
    "fft2d_4n_crash_ckpt": (
        "fft2d", 64, 4, 3, _crash_plan,
        lambda: FaultPolicy.checkpoint_restart(),
    ),
    "cornerturn_4n_lossy_retry": (
        "corner_turn", 32, 4, 2, _lossy_plan,
        lambda: FaultPolicy.retry(max_retries=4),
    ),
    "fft2d_8n_rejoin_grow": (
        "fft2d", 32, 8, 5, _rejoin_plan,
        lambda: FaultPolicy.grow_restripe(),
    ),
    "fft2d_8n_straggler_migrate": (
        "fft2d_slack", 56, 8, 10, _straggler_plan,
        lambda: FaultPolicy.migrate_stragglers(),
    ),
}


def run_scenario(name: str):
    """Execute one scenario from scratch; returns its RunResult."""
    app_name, n, nodes, iterations, plan_fn, policy_fn = SCENARIOS[name]
    model = _BUILDERS[app_name](n, nodes)
    mapping = benchmark_mapping(model, nodes)
    glue = generate_glue(model, mapping, num_processors=nodes)
    env = Environment()
    cluster = SimCluster.from_platform(
        env, get_platform("cspi"), nodes, fault_plan=plan_fn(nodes)
    )
    runtime = SageRuntime(
        glue, cluster, config=DEFAULT_CONFIG.timing_only(),
        fault_policy=policy_fn(),
    )
    return runtime.run(iterations=iterations)


def canonical_trace(result) -> str:
    """Byte-exact canonical rendering of a run's probe trace."""
    lines = [
        "|".join((
            repr(e.time), e.kind, e.function, str(e.function_id),
            str(e.thread), str(e.processor), str(e.iteration),
            e.detail, str(e.nbytes),
        ))
        for e in result.trace
    ]
    return "\n".join(lines)


def canonical_times(result) -> dict:
    """The §3.3 virtual-time quantities, rendered exactly."""
    return {
        "source_times": [repr(t) for t in result.source_times],
        "sink_times": [repr(t) for t in result.sink_times],
        "latencies": [repr(t) for t in result.latencies],
        "makespan": repr(result.makespan),
    }


def digest_of(result) -> str:
    return hashlib.sha256(canonical_trace(result).encode()).hexdigest()


def capture(name: str) -> dict:
    result = run_scenario(name)
    return {
        "trace_sha256": digest_of(result),
        "trace_events": len(result.trace),
        "times": canonical_times(result),
    }


def load_golden() -> dict:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def regenerate(write: Callable[[str], None] = print) -> dict:
    golden = {name: capture(name) for name in SCENARIOS}
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(golden, fh, indent=1, sort_keys=True)
        fh.write("\n")
    write(f"wrote {GOLDEN_PATH} ({len(golden)} scenarios)")
    return golden


if __name__ == "__main__":  # pragma: no cover - manual regeneration hook
    regenerate()
