"""Admission-time job-lint tests.

Every seeded-bad spec triggers exactly its JOB rule; the whole soak
workload lints clean (zero false-positive errors); and the service rejects
an infeasible spec *before any scheduler state changes* — no lease, no
slot, no job record — with the finding text on the typed error.
"""

import pytest

from tests.analysis_corpus import JOB_SEEDS, JOB_WARNING_RULES
from repro.analysis import lint_job_spec, predicted_footprint
from repro.apps.models import fft2d_model
from repro.core.model import round_robin_mapping
from repro.machine import get_platform
from repro.service.errors import AdmissionError, AdmissionRejected
from repro.service.jobs import JobSpec
from repro.service.service import SageService
from repro.service.soak import default_quotas, generate_workload

PLATFORM = get_platform("cspi")


class TestSeededSpecs:
    @pytest.mark.parametrize(
        "name,spec,kwargs,rule", JOB_SEEDS, ids=[s[0] for s in JOB_SEEDS]
    )
    def test_seed_triggers_exactly_its_rule(self, name, spec, kwargs, rule):
        report = lint_job_spec(spec, PLATFORM, **kwargs)
        rules = sorted({f.rule for f in report.findings})
        assert rules == [rule], (
            f"seed {name!r} wanted exactly [{rule}], got "
            f"{[f.render() for f in report.findings]}"
        )

    @pytest.mark.parametrize(
        "name,spec,kwargs,rule", JOB_SEEDS, ids=[s[0] for s in JOB_SEEDS]
    )
    def test_severity_matches_the_rule_contract(self, name, spec, kwargs, rule):
        report = lint_job_spec(spec, PLATFORM, **kwargs)
        if rule in JOB_WARNING_RULES:
            assert report.ok, "advisory rules must not reject the job"
        else:
            assert not report.ok

    def test_footprint_formula_counts_both_endpoints(self):
        app = fft2d_model(64, nodes=4)
        mapping = round_robin_mapping(app, 4)
        footprint = predicted_footprint(app, mapping)
        assert set(footprint) == set(range(4))
        assert all(nbytes > 0 for nbytes in footprint.values())


class TestCleanSweep:
    def test_every_soak_spec_lints_without_errors(self):
        """The soak workload is the service's own clean corpus: none of it
        may be rejected by the lint (tight budgets only warn)."""
        for spec, _at in generate_workload(200, seed=7):
            report = lint_job_spec(spec, PLATFORM, cluster_nodes=8)
            assert report.ok, (
                spec, [f.render() for f in report.errors]
            )

    def test_builtin_apps_lint_perfectly_clean(self):
        for app_name in ("fft2d", "corner_turn"):
            for size, nodes in ((16, 2), (32, 4), (64, 4), (64, 8)):
                spec = JobSpec(app=app_name, size=size, nodes=nodes)
                report = lint_job_spec(spec, PLATFORM, cluster_nodes=8)
                assert not report.findings, (
                    spec, [f.render() for f in report.findings]
                )


class TestServiceIntegration:
    def test_rejection_happens_before_any_lease(self):
        svc = SageService(nodes=8)
        with pytest.raises(AdmissionRejected) as info:
            svc.submit(JobSpec(app="fft2d", size=4096, nodes=2))
        # the typed error carries the findings and their rendered text
        assert any(f.rule == "JOB002" for f in info.value.findings)
        assert "JOB002" in str(info.value)
        assert isinstance(info.value, AdmissionError)
        # no scheduler state changed: no lease, no slot, no job record
        assert svc.scheduler.grants == 0
        assert not svc.scheduler.active
        census = svc.cluster.slot_census()
        assert all(count == 0 for count in census.values()), census
        assert not svc.jobs

    def test_admitted_specs_still_run_to_completion(self):
        svc = SageService(nodes=8)
        job_id = svc.submit(JobSpec(app="fft2d", size=32, nodes=4))
        svc.run()
        assert svc.job(job_id).state == "completed"
        assert not svc.check_clean()

    def test_tight_budget_only_warns_and_is_admitted(self):
        """JOB005 is advisory: the doomed-budget spec is admitted and dies
        at the budget boundary, exactly as before the lint existed."""
        from repro.service.errors import TimeBudgetExceeded

        svc = SageService(nodes=8)
        job_id = svc.submit(
            JobSpec(app="fft2d", size=64, nodes=4, iterations=6,
                    time_budget=1e-4)
        )
        svc.run()
        job = svc.job(job_id)
        assert job.state == "failed"
        assert isinstance(job.error, TimeBudgetExceeded)

    def test_lint_reports_are_memoized_per_spec(self):
        svc = SageService(nodes=8)
        spec = JobSpec(app="fft2d", size=32, nodes=4)
        first = svc.lint(spec)
        assert svc.lint(spec) is first
        assert len(svc._lint_cache) == 1

    def test_lint_can_be_disabled(self):
        svc = SageService(nodes=8, admission_lint=False)
        job_id = svc.submit(JobSpec(app="fft2d", size=4096, nodes=2))
        svc.run()
        # without the lint, the infeasible job burns a lease and fails late
        assert svc.job(job_id).state == "failed"


class TestStaticReservations:
    def test_default_effective_budget_is_the_declared_one(self):
        svc = SageService(nodes=8)
        spec = JobSpec(app="fft2d", size=32, nodes=4)
        assert svc.scheduler.effective_budget(spec) == spec.time_budget

    def test_predictor_tightens_the_declared_budget(self):
        svc = SageService(nodes=8, static_reservations=True)
        spec = JobSpec(app="fft2d", size=32, nodes=4)
        effective = svc.scheduler.effective_budget(spec)
        assert effective < spec.time_budget
        # ... but never kills a job the prediction says will finish: the
        # safety margin keeps the bound above the simulated makespan
        job_id = svc.submit(spec)
        svc.run()
        assert svc.job(job_id).state == "completed"
        assert svc.job(job_id).result.makespan <= effective

    def test_reserved_service_drains_a_mixed_workload_cleanly(self):
        quotas = default_quotas()
        svc = SageService(nodes=8, seed=7, quotas=quotas,
                          static_reservations=True)
        outcomes = {"admitted": 0, "rejected": 0}
        for spec, at in generate_workload(60, seed=11):
            try:
                svc.submit(spec, at=at)
                outcomes["admitted"] += 1
            except Exception:
                outcomes["rejected"] += 1
        svc.run()
        assert outcomes["admitted"] > 0
        assert not svc.check_clean()
        done = sum(1 for j in svc.jobs.values() if j.done)
        assert done == len(svc.jobs)
