"""Tests for the Alter language extensions: named let, hash tables, string ops."""

import pytest

from repro.core.alter import AlterRuntimeError, Interpreter


@pytest.fixture
def interp():
    return Interpreter()


class TestNamedLet:
    def test_simple_loop(self, interp):
        src = """
        (let loop ((i 0) (acc 0))
          (if (= i 5) acc (loop (+ i 1) (+ acc i))))
        """
        assert interp.run(src) == 10

    def test_tail_recursive_named_let_deep(self, interp):
        src = """
        (let count ((n 50000))
          (if (= n 0) "done" (count (- n 1))))
        """
        assert interp.run(src) == "done"

    def test_named_let_over_model_traversal(self, interp):
        src = """
        (define (count-positive lst)
          (let walk ((rest lst) (n 0))
            (cond ((null? rest) n)
                  ((> (car rest) 0) (walk (cdr rest) (+ n 1)))
                  (else (walk (cdr rest) n)))))
        (count-positive '(1 -2 3 0 4))
        """
        assert interp.run(src) == 3

    def test_named_let_shadows_outer_binding(self, interp):
        src = """
        (define loop 99)
        (let loop ((i 2)) (if (= i 0) "ok" (loop (- i 1))))
        """
        assert interp.run(src) == "ok"
        assert interp.run("loop") == 99

    def test_plain_let_still_works(self, interp):
        assert interp.run("(let ((x 1) (y 2)) (+ x y))") == 3

    def test_named_let_bad_bindings(self, interp):
        with pytest.raises(AlterRuntimeError):
            interp.run("(let loop 5 6)")


class TestHashTables:
    def test_basic_ops(self, interp):
        src = """
        (define h (make-hash))
        (hash-set! h "a" 1)
        (hash-set! h "b" 2)
        (list (hash-ref h "a") (hash-ref h "b") (hash-count h))
        """
        assert interp.run(src) == [1, 2, 2]

    def test_default_and_missing(self, interp):
        interp.run("(define h (make-hash))")
        assert interp.run('(hash-ref h "nope" 42)') == 42
        with pytest.raises(AlterRuntimeError, match="missing key"):
            interp.run('(hash-ref h "nope")')

    def test_has_and_remove(self, interp):
        interp.run('(define h (make-hash)) (hash-set! h "k" 1)')
        assert interp.run('(hash-has? h "k")') is True
        interp.run('(hash-remove! h "k")')
        assert interp.run('(hash-has? h "k")') is False

    def test_update(self, interp):
        src = """
        (define counts (make-hash))
        (for-each
          (lambda (w) (hash-update! counts w (lambda (n) (+ n 1)) 0))
          '("a" "b" "a" "a"))
        (list (hash-ref counts "a") (hash-ref counts "b"))
        """
        assert interp.run(src) == [3, 1]

    def test_keys_sorted(self, interp):
        interp.run('(define h (make-hash)) (hash-set! h "z" 1) (hash-set! h "a" 2)')
        assert interp.run("(hash-keys h)") == ["a", "z"]

    def test_hash_to_alist(self, interp):
        interp.run('(define h (make-hash)) (hash-set! h "x" 9)')
        assert interp.run("(hash->alist h)") == [["x", 9]]

    def test_hash_predicate(self, interp):
        assert interp.run("(hash? (make-hash))") is True
        assert interp.run("(hash? '(1 2))") is False

    def test_type_errors(self, interp):
        with pytest.raises(AlterRuntimeError):
            interp.run('(hash-set! 5 "k" 1)')
        with pytest.raises(AlterRuntimeError):
            interp.run('(hash-ref "notahash" "k")')

    def test_grouping_model_use_case(self, interp):
        """The realistic codegen use: group function instances by kernel."""
        from repro.apps import fft2d_model

        interp.globals.define("model", fft2d_model(64, 4))
        src = """
        (define by-kernel (make-hash))
        (for-each
          (lambda (inst)
            (hash-update! by-kernel (instance-kernel inst)
                          (lambda (lst) (cons (instance-path inst) lst)) '()))
          (function-instances model))
        (hash-keys by-kernel)
        """
        assert interp.run(src) == [
            "fft_cols", "fft_rows", "matrix_sink", "matrix_source"
        ]


class TestStringExtensions:
    def test_split(self, interp):
        assert interp.run('(string-split "a,b,c" ",")') == ["a", "b", "c"]
        assert interp.run('(string-split "a b  c")') == ["a", "b", "c"]

    def test_contains_and_index(self, interp):
        assert interp.run('(string-contains? "hello" "ell")') is True
        assert interp.run('(string-contains? "hello" "xyz")') is False
        assert interp.run('(string-index "hello" "llo")') == 2
        assert interp.run('(string-index "hello" "z")') == -1

    def test_replace_trim_repeat(self, interp):
        assert interp.run('(string-replace "a-b-c" "-" "_")') == "a_b_c"
        assert interp.run('(string-trim "  x  ")') == "x"
        assert interp.run('(string-repeat "ab" 3)') == "ababab"

    def test_string_to_number(self, interp):
        assert interp.run('(string->number "42")') == 42
        assert interp.run('(string->number "2.5")') == 2.5
        assert interp.run('(string->number "nope")') is False
