"""Alter language tests: lexer, parser, evaluator, standard library."""

import pytest

from repro.core.alter import (
    AlterRuntimeError,
    AlterSyntaxError,
    Interpreter,
    Symbol,
    parse,
    parse_one,
    to_source,
    tokenize,
)


@pytest.fixture
def interp():
    return Interpreter()


class TestLexer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("(+ 1 2.5 \"hi\" #t sym)")]
        assert kinds == ["lparen", "symbol", "number", "number", "string", "bool",
                         "symbol", "rparen"]

    def test_numbers(self):
        toks = tokenize("42 -7 3.14 -2.5e3")
        assert [t.value for t in toks] == [42, -7, 3.14, -2500.0]

    def test_string_escapes(self):
        (tok,) = tokenize(r'"a\nb\"c\\d"')
        assert tok.value == 'a\nb"c\\d'

    def test_comments_ignored(self):
        toks = tokenize("1 ; a comment\n2")
        assert [t.value for t in toks] == [1, 2]

    def test_positions_tracked(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_unterminated_string(self):
        with pytest.raises(AlterSyntaxError, match="unterminated"):
            tokenize('"abc')

    def test_bad_escape(self):
        with pytest.raises(AlterSyntaxError, match="bad escape"):
            tokenize(r'"\q"')

    def test_bad_hash(self):
        with pytest.raises(AlterSyntaxError):
            tokenize("#x")


class TestParser:
    def test_nested(self):
        expr = parse_one("(a (b 1) 2)")
        assert expr == [Symbol("a"), [Symbol("b"), 1], 2]

    def test_quote_sugar(self):
        assert parse_one("'x") == [Symbol("quote"), Symbol("x")]
        assert parse_one("'(1 2)") == [Symbol("quote"), [1, 2]]

    def test_multiple_top_level(self):
        assert len(parse("(a) (b) (c)")) == 3

    def test_unclosed_paren(self):
        with pytest.raises(AlterSyntaxError, match="unclosed"):
            parse("(a (b)")

    def test_stray_rparen(self):
        with pytest.raises(AlterSyntaxError, match="unexpected"):
            parse(")")

    def test_to_source_roundtrip(self):
        src = '(define (f x) (if (> x 0) "pos" (list 1 2 #t)))'
        assert parse_one(to_source(parse_one(src))) == parse_one(src)


class TestEvalCore:
    def test_arithmetic(self, interp):
        assert interp.run("(+ 1 2 3)") == 6
        assert interp.run("(- 10 3 2)") == 5
        assert interp.run("(- 4)") == -4
        assert interp.run("(* 2 3 4)") == 24
        assert interp.run("(/ 10 4)") == 2.5
        assert interp.run("(/ 10 5)") == 2
        assert interp.run("(mod 10 3)") == 1
        assert interp.run("(quotient 10 3)") == 3

    def test_division_by_zero(self, interp):
        with pytest.raises(AlterRuntimeError, match="division by zero"):
            interp.run("(/ 1 0)")

    def test_comparisons_chain(self, interp):
        assert interp.run("(< 1 2 3)") is True
        assert interp.run("(< 1 3 2)") is False
        assert interp.run("(= 2 2 2)") is True

    def test_define_and_lookup(self, interp):
        interp.run("(define x 5)")
        assert interp.run("(+ x 1)") == 6

    def test_unbound_symbol(self, interp):
        with pytest.raises(AlterRuntimeError, match="unbound"):
            interp.run("nope")

    def test_set_bang(self, interp):
        interp.run("(define x 1) (set! x 9)")
        assert interp.run("x") == 9

    def test_set_unbound_raises(self, interp):
        with pytest.raises(AlterRuntimeError, match="unbound"):
            interp.run("(set! ghost 1)")

    def test_if(self, interp):
        assert interp.run('(if (> 2 1) "yes" "no")') == "yes"
        assert interp.run('(if (> 1 2) "yes")') is None

    def test_cond_with_else(self, interp):
        src = """
        (define (sign x)
          (cond ((> x 0) 1)
                ((< x 0) -1)
                (else 0)))
        (list (sign 5) (sign -5) (sign 0))
        """
        assert Interpreter().run(src) == [1, -1, 0]

    def test_lambda_and_closure(self, interp):
        src = """
        (define (make-adder n) (lambda (x) (+ x n)))
        (define add3 (make-adder 3))
        (add3 10)
        """
        assert interp.run(src) == 13

    def test_define_function_sugar(self, interp):
        interp.run("(define (sq x) (* x x))")
        assert interp.run("(sq 7)") == 49

    def test_rest_args(self, interp):
        interp.run("(define (f a . rest) (list a rest))")
        assert interp.run("(f 1 2 3)") == [1, [2, 3]]
        assert interp.run("(f 1)") == [1, []]

    def test_arity_error(self, interp):
        interp.run("(define (f a b) a)")
        with pytest.raises(AlterRuntimeError, match="expected 2"):
            interp.run("(f 1)")

    def test_let_parallel_binding(self, interp):
        src = "(define x 1) (let ((x 2) (y x)) (list x y))"
        assert interp.run(src) == [2, 1]

    def test_let_star_sequential_binding(self, interp):
        assert interp.run("(let* ((x 2) (y (* x 3))) y)") == 6

    def test_begin(self, interp):
        assert interp.run("(begin 1 2 3)") == 3

    def test_while_loop(self, interp):
        src = """
        (define i 0) (define total 0)
        (while (< i 5)
          (set! total (+ total i))
          (set! i (+ i 1)))
        total
        """
        assert interp.run(src) == 10

    def test_and_or_short_circuit(self, interp):
        assert interp.run("(and 1 2 3)") == 3
        assert interp.run("(and 1 #f (error \"boom\"))") is False
        assert interp.run("(or #f 7)") == 7
        assert interp.run("(or 1 (error \"boom\"))") == 1

    def test_when_unless(self, interp):
        assert interp.run("(when (> 2 1) 5)") == 5
        assert interp.run("(when (< 2 1) 5)") is None
        assert interp.run("(unless (< 2 1) 6)") == 6

    def test_quote(self, interp):
        assert interp.run("'(1 2 3)") == [1, 2, 3]
        assert interp.run("'abc") == Symbol("abc")

    def test_recursion(self, interp):
        interp.run("(define (fact n) (if (<= n 1) 1 (* n (fact (- n 1)))))")
        assert interp.run("(fact 10)") == 3628800

    def test_deep_tail_recursion_does_not_overflow(self, interp):
        interp.run("(define (count n acc) (if (= n 0) acc (count (- n 1) (+ acc 1))))")
        assert interp.run("(count 100000 0)") == 100000

    def test_calling_non_callable(self, interp):
        with pytest.raises(AlterRuntimeError, match="not callable"):
            interp.run("(5 1 2)")


class TestStdlib:
    def test_list_ops(self, interp):
        assert interp.run("(car '(1 2 3))") == 1
        assert interp.run("(cdr '(1 2 3))") == [2, 3]
        assert interp.run("(cons 0 '(1 2))") == [0, 1, 2]
        assert interp.run("(append '(1) '(2 3) '(4))") == [1, 2, 3, 4]
        assert interp.run("(length '(1 2 3))") == 3
        assert interp.run("(reverse '(1 2 3))") == [3, 2, 1]
        assert interp.run("(null? '())") is True
        assert interp.run("(list-ref '(a b c) 1)") == Symbol("b")
        assert interp.run("(member 2 '(1 2 3))") is True

    def test_car_of_empty(self, interp):
        with pytest.raises(AlterRuntimeError):
            interp.run("(car '())")

    def test_map_filter_fold(self, interp):
        assert interp.run("(map (lambda (x) (* x x)) '(1 2 3))") == [1, 4, 9]
        assert interp.run("(filter (lambda (x) (> x 1)) '(0 1 2 3))") == [2, 3]
        assert interp.run("(fold + 0 '(1 2 3 4))") == 10

    def test_map_two_lists(self, interp):
        assert interp.run("(map + '(1 2) '(10 20))") == [11, 22]

    def test_sort_with_key(self, interp):
        assert interp.run("(sort '(3 1 2))") == [1, 2, 3]
        assert interp.run("(sort '(3 1 2) (lambda (x) (- x)))") == [3, 2, 1]

    def test_range(self, interp):
        assert interp.run("(range 4)") == [0, 1, 2, 3]
        assert interp.run("(range 2 5)") == [2, 3, 4]

    def test_assoc(self, interp):
        assert interp.run("(assoc 'b '((a 1) (b 2)))") == [Symbol("b"), 2]
        assert interp.run("(assoc 'z '((a 1)))") is False

    def test_string_ops(self, interp):
        assert interp.run('(string-append "a" "b" 3)') == "ab3"
        assert interp.run('(string-upcase "abc")') == "ABC"
        assert interp.run('(substring "hello" 1 3)') == "el"
        assert interp.run('(string-join (list 1 2 3) ", ")') == "1, 2, 3"
        assert interp.run("(number->string 42)") == "42"

    def test_format_directives(self, interp):
        assert interp.run('(format "x=~a y=~s~%" 5 "hi")') == 'x=5 y="hi"\n'
        assert interp.run('(format "~~")') == "~"

    def test_format_arg_count_errors(self, interp):
        with pytest.raises(AlterRuntimeError, match="not enough"):
            interp.run('(format "~a")')
        with pytest.raises(AlterRuntimeError, match="unused"):
            interp.run('(format "x" 1)')

    def test_predicates(self, interp):
        assert interp.run('(string? "x")') is True
        assert interp.run("(string? 'x)") is False
        assert interp.run("(number? 4)") is True
        assert interp.run("(number? #t)") is False
        assert interp.run("(symbol? 'x)") is True
        assert interp.run("(boolean? #f)") is True

    def test_apply(self, interp):
        assert interp.run("(apply + '(1 2 3))") == 6

    def test_error_builtin(self, interp):
        with pytest.raises(AlterRuntimeError, match="custom failure 42"):
            interp.run('(error "custom failure" 42)')

    def test_emit_accumulates(self, interp):
        interp.run('(emit "a" 1)(emit-line "b")(emit "c")')
        assert interp.output() == "a1b\nc"
        interp.reset_output()
        assert interp.output() == ""

    def test_py_repr_for_python_literals(self, interp):
        assert interp.run('(py-repr "it\'s")') == repr("it's")
        assert interp.run("(py-repr 3)") == "3"


class TestModelAccess:
    def make_model(self):
        from repro.core.model import (
            ApplicationModel,
            DataType,
            FunctionBlock,
            round_robin_mapping,
            striped,
        )

        t = DataType("m", "complex64", (8, 8))
        app = ApplicationModel("app")
        src = app.add_block(FunctionBlock("src", kernel="matrix_source", params={"n": 8}))
        src.add_out("out", t, striped(0))
        snk = app.add_block(FunctionBlock("snk", kernel="matrix_sink", threads=2))
        snk.add_in("in", t, striped(1))
        app.connect(src.port("out"), snk.port("in"))
        return app, round_robin_mapping(app, 2)

    def test_traversal(self):
        app, mapping = self.make_model()
        interp = Interpreter()
        interp.globals.define("model", app)
        assert interp.run("(object-name model)") == "app"
        assert interp.run("(object-type model)") == "ApplicationModel"
        assert interp.run("(length (function-instances model))") == 2
        assert interp.run("(instance-path (car (function-instances model)))") == "src"
        assert interp.run("(instance-kernel (list-ref (function-instances model) 1))") == "matrix_sink"
        assert interp.run("(instance-threads (list-ref (function-instances model) 1))") == 2

    def test_ports_and_arcs(self):
        app, _ = self.make_model()
        interp = Interpreter()
        interp.globals.define("model", app)
        assert interp.run("(length (flattened-arcs model))") == 1
        src_port = "(car (car (flattened-arcs model)))"
        assert interp.run(f"(port-name {src_port})") == "out"
        assert interp.run(f"(port-direction {src_port})") == "out"
        assert interp.run(f"(port-striping-kind {src_port})") == "striped"
        assert interp.run(f"(port-stripe-axis {src_port})") == 0
        assert interp.run(f"(port-dtype {src_port})") == "complex64"
        assert interp.run(f"(port-shape {src_port})") == [8, 8]
        assert interp.run(f"(port-elem-bytes {src_port})") == 8
        assert interp.run(f"(port-total-bytes {src_port})") == 8 * 8 * 8

    def test_properties_roundtrip(self):
        app, _ = self.make_model()
        interp = Interpreter()
        interp.globals.define("model", app)
        interp.run('(set-property! model "version" 3)')
        assert interp.run('(get-property model "version")') == 3
        assert interp.run('(get-property model "missing" 99)') == 99
        with pytest.raises(AlterRuntimeError, match="no property"):
            interp.run('(get-property model "missing")')

    def test_instance_params_alist(self):
        app, _ = self.make_model()
        interp = Interpreter()
        interp.globals.define("model", app)
        params = interp.run("(instance-params (car (function-instances model)))")
        assert params == [["n", 8]]

    def test_mapping_access(self):
        app, mapping = self.make_model()
        interp = Interpreter()
        interp.globals.define("mapping", mapping)
        assert interp.run("(mapping-processor mapping 1 0)") == 0
        assert interp.run("(mapping-processor mapping 1 1)") == 1

    def test_get_property_on_non_model(self):
        interp = Interpreter()
        with pytest.raises(AlterRuntimeError, match="not a model object"):
            interp.run('(get-property 5 "x")')
