"""Property-based tests for the Alter language (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alter import Interpreter, Symbol, parse, parse_one, to_source

# ---------------------------------------------------------------------------
# expression generators
# ---------------------------------------------------------------------------

_atoms = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32).filter(
        lambda f: abs(f) < 1e9
    ),
    st.booleans(),
    st.text(
        alphabet=st.characters(
            whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters=" _-"
        ),
        max_size=12,
    ),
    st.sampled_from(
        [Symbol(s) for s in ("a", "foo", "x1", "list?", "+", "set!", "->name")]
    ),
)

_sexprs = st.recursive(
    _atoms, lambda children: st.lists(children, max_size=5), max_leaves=25
)


def _normalise(expr):
    """Integral floats print as ints; mirror that for comparison."""
    if isinstance(expr, float) and expr.is_integer() and abs(expr) < 2**53:
        return int(expr)
    if isinstance(expr, list):
        return [_normalise(e) for e in expr]
    return expr


class TestReaderRoundTrip:
    @given(_sexprs)
    @settings(max_examples=200, deadline=None)
    def test_to_source_parse_roundtrip(self, expr):
        rendered = to_source(expr)
        reparsed = parse_one(rendered)
        assert reparsed == _normalise(expr)

    @given(st.lists(_sexprs, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_program_roundtrip(self, exprs):
        source = "\n".join(to_source(e) for e in exprs)
        assert parse(source) == [_normalise(e) for e in exprs]


class TestArithmeticProperties:
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_sum_matches_python(self, xs):
        interp = Interpreter()
        src = "(+ " + " ".join(str(x) for x in xs) + ")"
        assert interp.run(src) == sum(xs)

    @given(st.lists(st.integers(-20, 20), min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_product_matches_python(self, xs):
        interp = Interpreter()
        src = "(* " + " ".join(str(x) for x in xs) + ")"
        assert interp.run(src) == math.prod(xs)

    @given(st.integers(-100, 100), st.integers(-100, 100))
    @settings(max_examples=100, deadline=None)
    def test_comparison_trichotomy(self, a, b):
        interp = Interpreter()
        lt = interp.run(f"(< {a} {b})")
        gt = interp.run(f"(> {a} {b})")
        eq = interp.run(f"(= {a} {b})")
        assert [lt, gt, eq].count(True) == 1

    @given(st.lists(st.integers(-50, 50), max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_map_filter_consistent_with_python(self, xs):
        interp = Interpreter()
        interp.globals.define("xs", list(xs))
        doubled = interp.run("(map (lambda (x) (* 2 x)) xs)")
        assert doubled == [2 * x for x in xs]
        positive = interp.run("(filter (lambda (x) (> x 0)) xs)")
        assert positive == [x for x in xs if x > 0]

    @given(st.lists(st.integers(-50, 50), max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_reverse_involution(self, xs):
        interp = Interpreter()
        interp.globals.define("xs", list(xs))
        assert interp.run("(reverse (reverse xs))") == xs

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_sort_is_sorted_permutation(self, xs):
        interp = Interpreter()
        interp.globals.define("xs", list(xs))
        out = interp.run("(sort xs)")
        assert out == sorted(xs)


class TestEmitProperties:
    @given(st.lists(st.text(max_size=15).filter(lambda s: "\x00" not in s), max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_emitted_strings_concatenate_exactly(self, parts):
        interp = Interpreter()
        for part in parts:
            interp.globals.define("s", part)
            interp.run("(emit s)")
        assert interp.output() == "".join(parts)

    @given(st.text(max_size=30).filter(lambda s: "\x00" not in s))
    @settings(max_examples=80, deadline=None)
    def test_py_repr_emits_evaluable_python_strings(self, s):
        interp = Interpreter()
        interp.globals.define("s", s)
        rendered = interp.run("(py-repr s)")
        assert eval(rendered) == s  # noqa: S307 - the point of py-repr
