"""Buffer-hazard detector tests: seeded overlap/coverage/capacity defects
are caught exactly (element masks, not heuristics) and striping-derived
specs from the example apps carry no hazards."""

import pytest

from tests.analysis_corpus import BUFFER_SEEDS, make_spec
from repro.analysis import check_buffer_hazards, logical_buffer_specs
from repro.apps.models import corner_turn_model, fft2d_model
from repro.core.model import round_robin_mapping


class TestSeededDefects:
    @pytest.mark.parametrize(
        "name,spec,rule", BUFFER_SEEDS, ids=[s[0] for s in BUFFER_SEEDS]
    )
    def test_seed_is_caught(self, name, spec, rule):
        findings = check_buffer_hazards([spec])
        assert any(f.rule == rule for f in findings), (
            f"seed {name!r} did not trigger {rule}; got "
            f"{[f.render() for f in findings]}"
        )

    def test_overlap_reports_element_and_owners(self):
        spec = make_spec(
            src_threads=2, src_regions=[[(0, 5), (0, 8)], [(3, 8), (0, 8)]]
        )
        (finding,) = [
            f for f in check_buffer_hazards([spec]) if f.rule == "BUF202"
        ]
        assert "(3, 0)" in finding.message
        assert "[0, 1]" in finding.message
        assert finding.where == "writer.out->reader.in"

    def test_uncovered_read_reports_first_element(self):
        spec = make_spec(
            src_threads=2, src_regions=[[(0, 3), (0, 8)], [(5, 8), (0, 8)]]
        )
        findings = [
            f for f in check_buffer_hazards([spec]) if f.rule == "BUF203"
        ]
        assert findings
        assert "(3, 0)" in findings[0].message

    def test_read_before_write_in_execution_order(self):
        findings = check_buffer_hazards(
            [make_spec()], execution_order=[1, 0]
        )
        assert any(f.rule == "BUF204" for f in findings)
        # The correct order is hazard-free.
        assert check_buffer_hazards([make_spec()], execution_order=[0, 1]) == []

    def test_capacity_error_and_warning(self):
        from repro.core.model import Mapping

        # One 8x8 float32 buffer, both endpoints replicated single-thread on
        # processor 0: footprint is exactly 2 x 256 = 512 bytes there.
        spec = make_spec(
            src_threads=1,
            dst_threads=1,
            src_striping={"kind": "replicated", "axis": 0, "block": 1},
        )
        mapping = Mapping()
        mapping.assign(0, 0, 0)
        mapping.assign(1, 0, 0)

        def sweep(memory_bytes):
            return check_buffer_hazards(
                [spec], mapping=mapping, nprocs=1, memory_bytes=memory_bytes
            )

        assert any(f.rule == "BUF206" for f in sweep(500))   # 512 > 500
        assert any(f.rule == "BUF207" for f in sweep(600))   # 85% of DRAM
        assert sweep(10_000) == []                            # plenty of room

    def test_unmapped_thread_is_reported(self):
        from repro.core.model import Mapping

        mapping = Mapping()
        mapping.assign(0, 0, 0)  # only one of the writer's four threads
        findings = check_buffer_hazards(
            [make_spec()], mapping=mapping, nprocs=2, memory_bytes=1 << 20
        )
        assert any(f.rule == "BUF201" for f in findings)


class TestCleanSpecs:
    @pytest.mark.parametrize("nodes", [1, 2, 4])
    @pytest.mark.parametrize("builder", [fft2d_model, corner_turn_model])
    def test_example_apps_have_no_hazards(self, builder, nodes):
        app = builder(32, nodes=nodes)
        mapping = round_robin_mapping(app, nodes)
        order = [i.function_id for i in app.topological_order()]
        findings = check_buffer_hazards(
            logical_buffer_specs(app),
            mapping=mapping,
            nprocs=nodes,
            execution_order=order,
            memory_bytes=64 * 1024 * 1024,
        )
        assert findings == [], [f.render() for f in findings]

    def test_specs_match_glue_buffer_shape(self):
        from repro.core.codegen import generate_glue

        app = fft2d_model(32, nodes=2)
        mapping = round_robin_mapping(app, 2)
        glue = generate_glue(app, mapping, num_processors=2)
        derived = logical_buffer_specs(app)
        assert len(derived) == len(glue.logical_buffers)
        for mine, theirs in zip(derived, glue.logical_buffers):
            assert mine["id"] == theirs["id"]
            assert tuple(mine["shape"]) == tuple(theirs["shape"])
            assert mine["total_bytes"] == theirs["total_bytes"]
            assert mine["src_function"] == theirs["src_function"]
            assert mine["dst_function"] == theirs["dst_function"]
            assert mine["src_threads"] == theirs["src_threads"]
            assert mine["dst_threads"] == theirs["dst_threads"]

    def test_replicated_writers_do_not_overlap(self):
        # Replicated sources write identical full copies by design: no BUF202.
        spec = make_spec(
            src_striping={"kind": "replicated", "axis": 0, "block": 1},
            src_threads=4,
        )
        assert check_buffer_hazards([spec]) == []
