"""CLI tests for ``python -m repro analyze``."""

import json
import os

import pytest

from repro.__main__ import main
from repro.apps import benchmark_mapping, fft2d_model
from repro.core.model import cspi_hardware, save_design


@pytest.fixture
def design_path(tmp_path):
    app = fft2d_model(32, 2)
    path = str(tmp_path / "design.json")
    save_design(path, app, hardware=cspi_hardware(2),
                mapping=benchmark_mapping(app, 2))
    return path


@pytest.fixture
def in_tmp(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_analyze_builtin_fft2d_clean(in_tmp, capsys):
    assert main(["analyze", "fft2d", "--n", "32", "--nodes", "2"]) == 0
    out = capsys.readouterr().out
    assert "no findings: model is clean" in out
    assert "comm-schedule" in out


def test_analyze_builtin_cornerturn_with_platform(in_tmp, capsys):
    assert main(
        ["analyze", "cornerturn", "--n", "32", "--nodes", "4",
         "--platform", "cspi"]
    ) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_analyze_design_document(design_path, in_tmp, capsys):
    assert main(["analyze", design_path]) == 0
    out = capsys.readouterr().out
    assert "model is clean" in out


def test_analyze_writes_json_report(in_tmp, capsys):
    assert main(["analyze", "fft2d", "--n", "32", "--nodes", "2"]) == 0
    out = capsys.readouterr().out
    (line,) = [l for l in out.splitlines() if l.startswith("report written")]
    path = line.split()[-1]
    assert os.path.exists(path)
    with open(path) as fh:
        data = json.load(fh)
    assert data["ok"] is True
    assert data["passes"] == [
        "model-validation", "alter-lint", "comm-schedule", "buffer-hazards",
    ]


def test_analyze_json_format(in_tmp, capsys):
    assert main(
        ["analyze", "fft2d", "--n", "32", "--nodes", "2", "--format", "json"]
    ) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["ok"] is True
    assert data["findings"] == []


def test_analyze_output_path_override(in_tmp, tmp_path, capsys):
    target = str(tmp_path / "custom.json")
    assert main(
        ["analyze", "fft2d", "--n", "32", "--nodes", "2", "-o", target]
    ) == 0
    with open(target) as fh:
        assert json.load(fh)["model"].startswith("fft2d")


def _broken_design(tmp_path):
    """A design whose mapping round-trips but whose model deadlocks."""
    from tests.analysis_corpus import cyclic_exchange_model
    from repro.core.model import save_design

    app, mapping, nprocs = cyclic_exchange_model()
    path = str(tmp_path / "broken.json")
    save_design(path, app, hardware=cspi_hardware(nprocs), mapping=mapping)
    return path


def test_analyze_strict_exits_nonzero_on_errors(in_tmp, tmp_path, capsys):
    path = _broken_design(tmp_path)
    assert main(["analyze", path]) == 1
    out = capsys.readouterr().out
    assert "COMM001" in out or "MDL006" in out


def test_analyze_no_strict_exits_zero(in_tmp, tmp_path, capsys):
    path = _broken_design(tmp_path)
    assert main(["analyze", path, "--no-strict"]) == 0
    assert "error" in capsys.readouterr().out


def test_analyze_suppress_rules(in_tmp, tmp_path, capsys):
    path = _broken_design(tmp_path)
    code = main(
        ["analyze", path,
         "--suppress", "MDL006,COMM001,COMM002,COMM004,BUF204"]
    )
    out = capsys.readouterr().out
    assert "MDL006" not in out
    assert "COMM001" not in out
    assert code == 0, out
