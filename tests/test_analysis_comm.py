"""Communication-schedule analyzer tests: seeded deadlocks and mismatches
are caught symbolically — no cycle of the simulator ever runs — and the
schedules derived from clean DAG models check clean."""

import pytest

from tests.analysis_corpus import COMM_SEEDS, cyclic_exchange_model
from repro.analysis import (
    check_comm_schedule,
    derive_comm_schedule,
)
from repro.apps.models import corner_turn_model, fft2d_model
from repro.core.model import round_robin_mapping


class TestSeededDefects:
    @pytest.mark.parametrize(
        "name,builder,rule", COMM_SEEDS, ids=[s[0] for s in COMM_SEEDS]
    )
    def test_seed_is_caught(self, name, builder, rule):
        findings = check_comm_schedule(builder())
        assert any(f.rule == rule for f in findings), (
            f"seed {name!r} did not trigger {rule}; got "
            f"{[f.render() for f in findings]}"
        )

    def test_ring_deadlock_names_all_ranks(self):
        from tests.analysis_corpus import ring_deadlock_schedule

        (finding,) = [
            f
            for f in check_comm_schedule(ring_deadlock_schedule())
            if f.rule == "COMM001" and f.severity == "error"
        ]
        assert "0" in finding.message
        assert "deadlock" in finding.message

    def test_tag_mismatch_reports_both_tags(self):
        from tests.analysis_corpus import tag_mismatch_schedule

        findings = check_comm_schedule(tag_mismatch_schedule())
        (mismatch,) = [f for f in findings if f.rule == "COMM005"]
        assert "9" in mismatch.message and "3" in mismatch.message


class TestDerivedSchedules:
    def test_cyclic_model_deadlocks_without_simulation(self):
        app, mapping, nprocs = cyclic_exchange_model()
        schedule = derive_comm_schedule(app, mapping, nprocs)
        findings = check_comm_schedule(schedule)
        assert any(
            f.rule == "COMM001" and f.severity == "error" for f in findings
        ), [f.render() for f in findings]

    @pytest.mark.parametrize("nodes", [1, 2, 4])
    def test_fft2d_schedule_is_clean(self, nodes):
        app = fft2d_model(32, nodes=nodes)
        mapping = round_robin_mapping(app, nodes)
        schedule = derive_comm_schedule(app, mapping, nodes)
        findings = check_comm_schedule(schedule)
        assert findings == [], [f.render() for f in findings]

    @pytest.mark.parametrize("nodes", [1, 2, 4])
    def test_corner_turn_schedule_is_clean(self, nodes):
        app = corner_turn_model(32, nodes=nodes)
        mapping = round_robin_mapping(app, nodes)
        schedule = derive_comm_schedule(app, mapping, nodes)
        findings = check_comm_schedule(schedule)
        assert findings == [], [f.render() for f in findings]

    def test_corner_turn_emits_a_collective(self):
        # The axis-change redistribution on a shared processor set is one
        # all-to-all, not a mesh of point-to-point messages.
        nodes = 4
        app = corner_turn_model(32, nodes=nodes)
        mapping = round_robin_mapping(app, nodes)
        schedule = derive_comm_schedule(app, mapping, nodes)
        colls = [
            op
            for ops in schedule.ops.values()
            for op in ops
            if op.kind == "coll"
        ]
        assert colls, "axis-changing arc should derive as a collective"
        assert all(op.participants == tuple(range(nodes)) for op in colls)

    def test_single_node_schedule_is_empty(self):
        app = fft2d_model(32, nodes=1)
        mapping = round_robin_mapping(app, 1)
        schedule = derive_comm_schedule(app, mapping, 1)
        assert schedule.total_ops() == 0

    def test_empty_schedule_checks_clean(self):
        from repro.analysis import CommSchedule

        assert check_comm_schedule(CommSchedule(nprocs=4)) == []
