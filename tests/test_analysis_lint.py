"""Alter linter tests: every seeded lint defect is caught at the declared
location, the standard glue scripts lint clean, and scoping mirrors the
interpreter (hoisting, named let, rest params)."""

import pytest

from tests.analysis_corpus import LINT_CLEAN, LINT_SEEDS
from repro.analysis import lint_glue_scripts, lint_script
from repro.analysis.alter_lint import builtin_signatures, script_defines


class TestSeededDefects:
    @pytest.mark.parametrize(
        "name,source,rule,where_frag", LINT_SEEDS,
        ids=[s[0] for s in LINT_SEEDS],
    )
    def test_seed_is_caught_at_location(self, name, source, rule, where_frag):
        findings = lint_script(source, name)
        matching = [f for f in findings if f.rule == rule]
        assert matching, (
            f"seed {name!r} did not trigger {rule}; got "
            f"{[f.render() for f in findings]}"
        )
        assert any(where_frag in f.where for f in matching), (
            f"{rule} fired, but not at {where_frag!r}: "
            f"{[f.where for f in matching]}"
        )

    def test_unbound_symbol_suggests_spelling(self):
        (finding,) = [
            f for f in lint_script("(emit-line (lenght (list 1)))")
            if f.rule == "ALT001"
        ]
        assert "length" in finding.hint

    def test_syntax_error_stops_other_passes(self):
        findings = lint_script("(((")
        assert [f.rule for f in findings] == ["ALT000"]


class TestCleanCode:
    @pytest.mark.parametrize(
        "name,source", LINT_CLEAN, ids=[s[0] for s in LINT_CLEAN]
    )
    def test_clean_script_has_no_findings(self, name, source):
        assert lint_script(source, name) == []

    def test_standard_glue_scripts_lint_clean(self):
        findings = lint_glue_scripts()
        assert findings == [], [f.render() for f in findings]

    def test_recursive_define_is_not_unbound(self):
        src = """
        (define (fact n) (if (< n 2) 1 (* n (fact (- n 1)))))
        (emit-line (fact 5))
        """
        assert lint_script(src) == []

    def test_forward_reference_via_hoisting(self):
        src = "(define (f) (g))\n(define (g) 1)\n(emit-line (f))"
        assert lint_script(src) == []

    def test_rest_params_allow_variadic_calls(self):
        src = "(define (f a . rest) (cons a rest))\n(emit-line (f 1 2 3 4))"
        assert lint_script(src) == []

    def test_named_let_loop_variable_not_unused(self):
        src = "(let loop ((i 0)) (when (< i 3) (loop (+ i 1))))"
        assert lint_script(src) == []

    def test_set_bound_variable_disables_arity_check(self):
        # After set!, the binding may hold a different procedure: no ALT002.
        src = """
        (define (f a) a)
        (set! f (lambda (a b) (cons a b)))
        (emit-line (f 1 2))
        """
        assert [f.rule for f in lint_script(src)] == []


class TestInfrastructure:
    def test_builtin_signature_table_covers_core_forms(self):
        sig = builtin_signatures()
        assert sig["cons"] == (2, 2)
        assert sig["car"] == (1, 1)
        assert sig["list"][1] is None  # variadic
        assert sig["true"] is None     # constant

    def test_script_defines_lists_toplevel_names(self):
        src = "(define x 1)\n(define (f a) a)\n(let ((y 2)) y)"
        assert script_defines(src) == frozenset({"x", "f"})

    def test_extra_globals_are_visible(self):
        src = "(emit-line custom-global)"
        assert lint_script(src, extra_globals=("custom-global",)) == []
        assert [f.rule for f in lint_script(src, extra_globals=())] == ["ALT001"]

    def test_quoted_data_is_not_resolved(self):
        assert lint_script("(emit-line (quote (no-such-name 1 2)))") == []
        assert lint_script("(emit-line '(no-such-name))") == []

    def test_lambda_immediate_application_arity(self):
        findings = lint_script("((lambda (a b) (cons a b)) 1)")
        assert any(f.rule == "ALT002" for f in findings)
