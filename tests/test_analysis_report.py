"""AnalysisReport / Finding / ValidationIssue value-type tests, plus the
end-to-end verifier over clean and seeded-defect models."""

import json

import pytest

from tests.analysis_corpus import cyclic_exchange_model
from repro.analysis import (
    SCHEMA_VERSION,
    AnalysisReport,
    Finding,
    analyze_application,
)
from repro.apps.models import corner_turn_model, fft2d_model
from repro.core.model import round_robin_mapping
from repro.core.model.validation import ValidationIssue


class TestFinding:
    def test_rejects_bad_severity(self):
        with pytest.raises(ValueError):
            Finding("fatal", "X001", "here", "boom")

    def test_render_includes_rule_location_hint(self):
        f = Finding("error", "ALT001", "s:1:2", "unbound symbol 'x'", "define it")
        assert f.render() == (
            "error[ALT001] s:1:2: unbound symbol 'x'  (hint: define it)"
        )

    def test_sorting_puts_errors_first(self):
        warn = Finding("warning", "BUF207", "a", "near capacity")
        err = Finding("error", "COMM001", "b", "deadlock")
        assert sorted([warn, err], key=lambda f: f.sort_key)[0] is err

    def test_from_validation_keeps_rule_and_severity(self):
        issue = ValidationIssue("error", "blk.port", "port is not connected",
                                rule="MDL008")
        f = Finding.from_validation(issue)
        assert (f.severity, f.rule, f.where) == ("error", "MDL008", "blk.port")
        assert f.source == "model-validation"


class TestValidationIssueValueType:
    def test_hashable_and_deduplicates(self):
        a = ValidationIssue("error", "x", "m", rule="MDL002")
        b = ValidationIssue("error", "x", "m", rule="MDL002")
        assert a == b
        assert len({a, b}) == 1

    def test_orderable_errors_before_warnings(self):
        w = ValidationIssue("warning", "a", "m1")
        e = ValidationIssue("error", "z", "m2")
        assert sorted([w, e]) == [e, w]

    def test_orders_by_location_within_severity(self):
        e1 = ValidationIssue("error", "a", "m")
        e2 = ValidationIssue("error", "b", "m")
        assert sorted([e2, e1]) == [e1, e2]

    def test_repr_format_is_stable(self):
        issue = ValidationIssue("error", "x.y", "boom")
        assert repr(issue) == "[error] x.y: boom"


class TestAnalysisReport:
    def _report(self):
        rep = AnalysisReport(model_name="m")
        rep.add(Finding("warning", "BUF207", "p0", "near capacity"))
        rep.add(Finding("error", "COMM001", "arc", "deadlock"))
        rep.record_pass("comm-schedule")
        return rep

    def test_ok_and_counts(self):
        rep = self._report()
        assert not rep.ok
        assert len(rep.errors) == 1
        assert len(rep.warnings) == 1

    def test_suppress_filters_rules(self):
        rep = self._report().suppress(["COMM001"])
        assert rep.ok
        assert [f.rule for f in rep.findings] == ["BUF207"]

    def test_raise_if_errors_renders_findings(self):
        with pytest.raises(ValueError, match=r"COMM001.*deadlock"):
            self._report().raise_if_errors()
        self._report().suppress(["COMM001"]).raise_if_errors()  # no raise

    def test_json_round_trip(self):
        data = json.loads(self._report().to_json())
        assert data["model"] == "m"
        assert data["ok"] is False
        assert data["counts"] == {"error": 1, "warning": 1, "info": 0}
        assert data["findings"][0]["rule"] == "COMM001"  # errors sort first
        assert data["passes"] == ["comm-schedule"]

    def test_render_text_mentions_totals(self):
        text = self._report().render_text()
        assert "1 error(s), 1 warning(s)" in text
        assert "SAGE Verifier report" in text

    def test_schema_carries_its_version(self):
        data = self._report().to_dict()
        assert data["version"] == SCHEMA_VERSION
        assert SCHEMA_VERSION >= 2
        # the version key leads the document so diffs show it first
        assert next(iter(data)) == "version"

    def test_serialization_is_order_stable(self):
        """Findings added in any order serialize identically — reports for
        an unchanged model must diff byte-identically across runs."""
        a = AnalysisReport(model_name="m")
        b = AnalysisReport(model_name="m")
        findings = [
            Finding("warning", "BUF207", "p1", "near capacity"),
            Finding("error", "COMM001", "arc", "deadlock"),
            Finding("error", "ALT001", "s:1:1", "unbound"),
            Finding("info", "PERF004", "proc3", "idle"),
        ]
        for f in findings:
            a.add(f)
        for f in reversed(findings):
            b.add(f)
        assert a.to_json() == b.to_json()
        rules = [f["rule"] for f in a.to_dict()["findings"]]
        assert rules == ["ALT001", "COMM001", "BUF207", "PERF004"]


class TestAnalyzeApplication:
    @pytest.mark.parametrize("builder", [fft2d_model, corner_turn_model])
    def test_clean_apps_have_zero_findings(self, builder):
        app = builder(32, nodes=4)
        report = analyze_application(
            app, round_robin_mapping(app, 4), 4,
            memory_bytes=64 * 1024 * 1024,
        )
        assert report.findings == [], report.render_text()
        assert report.passes_run == [
            "model-validation", "alter-lint", "comm-schedule", "buffer-hazards",
        ]

    def test_cyclic_model_gets_both_mdl_and_comm_findings(self):
        app, mapping, nprocs = cyclic_exchange_model()
        report = analyze_application(app, mapping, nprocs)
        rules = {f.rule for f in report.findings}
        assert "MDL006" in rules   # model validation sees the cycle
        assert "COMM001" in rules  # the schedule deadlocks head-to-head
        assert not report.ok

    def test_runs_without_mapping(self):
        app = fft2d_model(32, nodes=2)
        report = analyze_application(app)
        assert report.ok
        assert "comm-schedule" not in report.passes_run

    def test_broken_extra_script_is_linted(self):
        app = fft2d_model(32, nodes=2)
        report = analyze_application(
            app, round_robin_mapping(app, 2), 2,
            extra_scripts=[("broken", "(undefined-fn)")],
        )
        assert any(
            f.rule == "ALT001" and "broken" in f.where for f in report.findings
        )

    def test_suppression_at_entry_point(self):
        app, mapping, nprocs = cyclic_exchange_model()
        report = analyze_application(
            app, mapping, nprocs,
            suppress=["MDL006", "COMM001", "COMM004", "BUF204"],
        )
        leftover = {f.rule for f in report.findings}
        assert not leftover & {"MDL006", "COMM001", "COMM004", "BUF204"}
