"""Tests for AnyOf (first-of-N) events and receive-with-timeout."""

import pytest

from repro.machine import Environment, SimCluster, SimulationError, cspi
from repro.mpi import MpiError, MpiWorld


class TestAnyOf:
    def test_first_event_wins(self):
        env = Environment()

        def proc():
            which, value = yield env.any_of(
                [env.timeout(5, "slow"), env.timeout(2, "fast")]
            )
            return (which, value, env.now)

        assert env.run(until=env.process(proc())) == (1, "fast", 2.0)

    def test_straggler_ignored(self):
        env = Environment()
        log = []

        def proc():
            which, value = yield env.any_of([env.timeout(1, "a"), env.timeout(3, "b")])
            log.append((which, value))
            yield env.timeout(10)  # let the straggler fire harmlessly

        env.process(proc())
        env.run()
        assert log == [(0, "a")]

    def test_failure_propagates(self):
        env = Environment()
        bad = env.event()

        def proc():
            try:
                yield env.any_of([bad, env.timeout(10)])
            except ValueError as e:
                return str(e)

        def failer():
            yield env.timeout(1)
            bad.fail(ValueError("boom"))

        p = env.process(proc())
        env.process(failer())
        assert env.run(until=p) == "boom"

    def test_empty_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.any_of([])

    def test_simultaneous_events_first_listed_wins(self):
        env = Environment()

        def proc():
            which, _ = yield env.any_of([env.timeout(1, "x"), env.timeout(1, "y")])
            return which

        assert env.run(until=env.process(proc())) == 0


class TestRecvTimeout:
    def make_world(self, nodes=2):
        env = Environment()
        return MpiWorld(SimCluster.from_platform(env, cspi(), nodes))

    def test_message_before_deadline(self):
        world = self.make_world()

        def sender(comm):
            yield from comm.send("hello", dest=1)

        def receiver(comm):
            data, ok = yield from comm.recv_timeout(1.0, source=0)
            return (data, ok)

        world.spawn_rank(0, sender)
        p = world.spawn_rank(1, receiver)
        world.env.run(until=p)
        assert p.value == ("hello", True)

    def test_timeout_fires_when_no_message(self):
        world = self.make_world()

        def receiver(comm):
            data, ok = yield from comm.recv_timeout(0.5, source=0)
            return (data, ok, comm.now)

        p = world.spawn_rank(1, receiver)
        world.env.run(until=p)
        assert p.value == (None, False, 0.5)

    def test_late_message_not_lost(self):
        """A message arriving after the timeout must remain receivable."""
        world = self.make_world()

        def sender(comm):
            yield comm.env.timeout(1.0)
            yield from comm.send("late", dest=1)

        def receiver(comm):
            data, ok = yield from comm.recv_timeout(0.1, source=0)
            assert not ok
            late = yield from comm.recv(source=0)
            return late

        world.spawn_rank(0, sender)
        p = world.spawn_rank(1, receiver)
        world.env.run(until=p)
        assert p.value == "late"

    def test_tag_filtering_respected(self):
        world = self.make_world()

        def sender(comm):
            yield from comm.send("wrong-tag", dest=1, tag=7)

        def receiver(comm):
            data, ok = yield from comm.recv_timeout(0.2, source=0, tag=3)
            assert not ok
            # the tag-7 message is still there
            data = yield from comm.recv(source=0, tag=7)
            return data

        world.spawn_rank(0, sender)
        p = world.spawn_rank(1, receiver)
        world.env.run(until=p)
        assert p.value == "wrong-tag"

    def test_invalid_timeout(self):
        world = self.make_world()

        def receiver(comm):
            yield from comm.recv_timeout(0)

        world.spawn_rank(0, receiver)
        with pytest.raises(MpiError):
            world.env.run()
