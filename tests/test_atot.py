"""AToT tests: GA core, mapping objectives, partition optimisation, scheduling."""

import pytest

from repro.apps import corner_turn_model, fft2d_model
from repro.core.atot import (
    GaConfig,
    MappingObjective,
    MappingProblem,
    estimate_thread_flops,
    genetic_algorithm,
    list_schedule,
    optimize_mapping,
    random_mapping,
)
from repro.core.model import round_robin_mapping, single_node_mapping
from repro.machine import cspi


class TestGaCore:
    def test_finds_trivial_optimum(self):
        # Minimise sum of genes: optimum is all zeros.
        result = genetic_algorithm(
            gene_count=8,
            gene_values=4,
            fitness=lambda ch: float(sum(ch)),
            config=GaConfig(population=40, generations=40, seed=1),
        )
        assert result.best == (0,) * 8
        assert result.best_fitness == 0.0

    def test_history_monotone_nonincreasing(self):
        result = genetic_algorithm(
            8, 4, lambda ch: float(sum(ch)), GaConfig(population=30, generations=30, seed=2)
        )
        assert all(b <= a for a, b in zip(result.history, result.history[1:]))

    def test_deterministic_given_seed(self):
        fit = lambda ch: float(sum((g - 2) ** 2 for g in ch))  # noqa: E731
        r1 = genetic_algorithm(6, 5, fit, GaConfig(seed=7, generations=20))
        r2 = genetic_algorithm(6, 5, fit, GaConfig(seed=7, generations=20))
        assert r1.best == r2.best
        assert r1.history == r2.history

    def test_seed_individual_never_lost(self):
        # With a perfect seed and elitism, the result can't be worse.
        seed = (0, 0, 0, 0)
        result = genetic_algorithm(
            4, 4, lambda ch: float(sum(ch)),
            GaConfig(population=10, generations=5, seed=3),
            seeds=[seed],
        )
        assert result.best_fitness == 0.0

    def test_one_point_crossover_mode(self):
        result = genetic_algorithm(
            6, 3, lambda ch: float(sum(ch)),
            GaConfig(crossover="one_point", generations=25, seed=4),
        )
        assert result.best_fitness == 0.0

    def test_fitness_cache_reduces_evaluations(self):
        calls = []

        def fit(ch):
            calls.append(ch)
            return float(sum(ch))

        result = genetic_algorithm(4, 2, fit, GaConfig(population=20, generations=20, seed=5))
        assert result.evaluations == len(calls)
        assert result.evaluations <= 16  # only 2^4 distinct chromosomes exist

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            GaConfig(population=1)
        with pytest.raises(ValueError):
            GaConfig(mutation_rate=2.0)
        with pytest.raises(ValueError):
            GaConfig(crossover="triple")
        with pytest.raises(ValueError):
            GaConfig(elitism=60, population=60)

    def test_bad_seed_length(self):
        with pytest.raises(ValueError, match="seed chromosome"):
            genetic_algorithm(4, 2, lambda ch: 0.0, seeds=[(1, 2)])


class TestObjectives:
    def test_thread_flops_scale_with_slice(self):
        app = fft2d_model(64, 4)
        rowfft = app.instance_by_path("rowfft")
        f = estimate_thread_flops(app, rowfft, 0)
        # 16 rows x 5*64*log2(64) flops
        assert f == pytest.approx(16 * 5 * 64 * 6)

    def test_source_has_zero_flops(self):
        app = fft2d_model(64, 4)
        src = app.instance_by_path("src")
        assert estimate_thread_flops(app, src, 0) == 0.0

    def test_round_robin_is_balanced(self):
        app = fft2d_model(64, 4)
        obj = MappingObjective(app, cspi(), 4)
        bd = obj.breakdown(round_robin_mapping(app, 4))
        assert bd.load_imbalance == pytest.approx(1.0, abs=0.01)

    def test_single_node_maximally_imbalanced(self):
        app = fft2d_model(64, 4)
        obj = MappingObjective(app, cspi(), 4)
        bd = obj.breakdown(single_node_mapping(app))
        assert bd.load_imbalance == pytest.approx(4.0, abs=0.01)
        assert bd.comm_bytes == 0.0  # everything co-located

    def test_round_robin_comm_is_corner_turn_only(self):
        n, nodes = 64, 4
        app = fft2d_model(n, nodes)
        obj = MappingObjective(app, cspi(), nodes)
        bd = obj.breakdown(round_robin_mapping(app, nodes))
        # src->rowfft and colfft->sink are co-located; only the corner turn
        # crosses processors: off-diagonal tiles of the n x n complex64 matrix.
        tile = (n // nodes) * (n // nodes) * 8
        assert bd.comm_bytes == pytest.approx(nodes * (nodes - 1) * tile)

    def test_latency_constraint_penalty(self):
        app = fft2d_model(64, 4)
        obj = MappingObjective(app, cspi(), 4, latency_constraint=1e-9)
        bd = obj.breakdown(round_robin_mapping(app, 4))
        assert bd.penalty > 0

    def test_fitness_prefers_round_robin_over_random(self):
        app = fft2d_model(64, 8)
        obj = MappingObjective(app, cspi(), 8)
        rr = obj.fitness(round_robin_mapping(app, 8))
        rnd = obj.fitness(random_mapping(app, 8, seed=13))
        assert rr <= rnd


class TestOptimizeMapping:
    def test_never_worse_than_round_robin(self):
        app = corner_turn_model(64, 4)
        result = optimize_mapping(
            app, cspi(), 4, config=GaConfig(population=30, generations=15, seed=1)
        )
        assert result.fitness <= result.baseline_fitness
        assert 0.0 <= result.improvement <= 1.0 or result.improvement == 0.0

    def test_result_mapping_is_complete(self):
        app = corner_turn_model(64, 4)
        result = optimize_mapping(
            app, cspi(), 4, config=GaConfig(population=20, generations=10, seed=2)
        )
        result.mapping.validate(app, processor_count=4)

    def test_beats_random_start_significantly(self):
        app = fft2d_model(64, 8)
        obj = MappingObjective(app, cspi(), 8)
        result = optimize_mapping(
            app, cspi(), 8, config=GaConfig(population=40, generations=25, seed=3)
        )
        rnd = obj.fitness(random_mapping(app, 8, seed=99))
        assert result.fitness < rnd

    def test_problem_encode_decode_roundtrip(self):
        app = fft2d_model(64, 4)
        problem = MappingProblem(app, cspi(), 4)
        mapping = round_robin_mapping(app, 4)
        assert problem.decode(problem.encode(mapping)) == mapping

    def test_chromosome_length_checked(self):
        app = fft2d_model(64, 4)
        problem = MappingProblem(app, cspi(), 4)
        with pytest.raises(ValueError, match="chromosome length"):
            problem.decode((0,))


class TestListSchedule:
    def test_schedule_covers_all_threads(self):
        app = fft2d_model(64, 4)
        mapping = round_robin_mapping(app, 4)
        sched = list_schedule(app, mapping, cspi(), 4)
        assert len(sched.tasks) == sum(i.threads for i in app.function_instances())

    def test_dependencies_respected(self):
        app = fft2d_model(64, 4)
        sched = list_schedule(app, round_robin_mapping(app, 4), cspi(), 4)
        by_fid = {}
        for t in sched.tasks:
            by_fid.setdefault(t.function_id, []).append(t)
        # every colfft thread starts after some rowfft thread finished
        rowfft_min_finish = min(t.finish for t in by_fid[1])
        for t in by_fid[2]:
            assert t.start >= rowfft_min_finish

    def test_processor_exclusive(self):
        app = fft2d_model(64, 2)
        sched = list_schedule(app, single_node_mapping(app), cspi(), 2)
        tasks = sched.tasks_on(0)
        for t1, t2 in zip(tasks, tasks[1:]):
            assert t2.start >= t1.finish - 1e-12

    def test_makespan_positive(self):
        app = corner_turn_model(64, 4)
        sched = list_schedule(app, round_robin_mapping(app, 4), cspi(), 4)
        assert sched.makespan > 0

    def test_utilization_bounded(self):
        app = fft2d_model(64, 4)
        sched = list_schedule(app, round_robin_mapping(app, 4), cspi(), 4)
        utils = sched.processor_utilization(4)
        assert len(utils) == 4
        assert all(0.0 <= u <= 1.0 for u in utils)

    def test_balanced_mapping_shorter_makespan_than_single_node(self):
        app = fft2d_model(256, 4)
        balanced = list_schedule(app, round_robin_mapping(app, 4), cspi(), 4)
        lumped = list_schedule(app, single_node_mapping(app), cspi(), 4)
        assert balanced.makespan < lumped.makespan
