"""AToT architecture-trade-study and simulated-annealing tests."""

import pytest

from repro.apps import corner_turn_model, fft2d_model
from repro.core.atot import (
    AnnealConfig,
    GaConfig,
    MappingProblem,
    Requirements,
    architecture_trade_study,
    format_trade_study,
    genetic_algorithm,
    simulated_annealing,
)
from repro.core.model import round_robin_mapping
from repro.machine import cspi

FAST_GA = GaConfig(population=16, generations=5, seed=1)


def builder(nodes):
    return fft2d_model(256, nodes)


class TestTradeStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return architecture_trade_study(
            builder(4),
            Requirements(),
            node_counts=(2, 4, 8),
            ga_config=FAST_GA,
            app_builder=builder,
        )

    def test_all_candidates_evaluated(self, result):
        assert len(result.candidates) == 4 * 3  # platforms x node counts

    def test_more_nodes_lower_latency_higher_cost(self, result):
        cspi_points = {c.nodes: c for c in result.candidates if c.platform == "CSPI"}
        assert cspi_points[8].est_latency < cspi_points[2].est_latency
        assert cspi_points[8].cost > cspi_points[2].cost

    def test_pareto_front_nonempty_and_consistent(self, result):
        front = result.pareto
        assert front
        for a in front:
            assert not any(b.dominates(a) for b in result.candidates)

    def test_latency_requirement_filters(self):
        tight = architecture_trade_study(
            builder(4),
            Requirements(max_latency=1e-6),  # impossible
            node_counts=(2, 4),
            ga_config=FAST_GA,
            app_builder=builder,
        )
        assert not tight.feasible
        assert tight.recommended is None
        assert all("latency" in v for c in tight.candidates for v in c.violations)

    def test_cost_budget_respected(self):
        result = architecture_trade_study(
            builder(4),
            Requirements(max_cost=60.0),  # k$: excludes big node counts
            node_counts=(2, 4, 8),
            ga_config=FAST_GA,
            app_builder=builder,
        )
        rec = result.recommended
        assert rec is not None
        assert rec.cost <= 60.0

    def test_max_nodes_prunes_candidates(self):
        result = architecture_trade_study(
            builder(2),
            Requirements(max_nodes=2),
            node_counts=(2, 4, 8),
            ga_config=FAST_GA,
            app_builder=builder,
        )
        assert all(c.nodes <= 2 for c in result.candidates)

    def test_recommended_is_cheapest_feasible(self, result):
        rec = result.recommended
        assert rec is not None
        assert all(rec.cost <= c.cost for c in result.feasible if c.pareto_optimal)

    def test_formatting(self, result):
        text = format_trade_study(result)
        assert "recommended:" in text
        assert "CSPI" in text and "Mercury" in text

    def test_invalid_requirements(self):
        with pytest.raises(ValueError):
            Requirements(max_latency=-1)
        with pytest.raises(ValueError):
            Requirements(max_nodes=0)

    def test_fixed_app_skips_unmappable_node_counts(self):
        # threads=4 model cannot stripe over... still fits any node count
        # (mapping just folds), so all candidates appear.
        app = corner_turn_model(64, 4)
        result = architecture_trade_study(
            app, node_counts=(2, 4), ga_config=FAST_GA
        )
        assert {c.nodes for c in result.candidates} == {2, 4}


class TestSimulatedAnnealing:
    def test_finds_trivial_optimum(self):
        result = simulated_annealing(
            8, 4, lambda ch: float(sum(ch)),
            AnnealConfig(steps=3000, seed=2),
        )
        assert result.best_fitness <= 2.0  # near-zero on an easy landscape

    def test_history_monotone_best(self):
        result = simulated_annealing(
            6, 3, lambda ch: float(sum(ch)), AnnealConfig(steps=500, seed=3)
        )
        assert all(b <= a for a, b in zip(result.history, result.history[1:]))

    def test_deterministic(self):
        fit = lambda ch: float(sum((g - 1) ** 2 for g in ch))  # noqa: E731
        r1 = simulated_annealing(5, 4, fit, AnnealConfig(steps=400, seed=4))
        r2 = simulated_annealing(5, 4, fit, AnnealConfig(steps=400, seed=4))
        assert r1.best == r2.best and r1.history == r2.history

    def test_start_seed_never_lost(self):
        result = simulated_annealing(
            4, 4, lambda ch: float(sum(ch)),
            AnnealConfig(steps=50, seed=5),
            start=(0, 0, 0, 0),
        )
        assert result.best_fitness == 0.0

    def test_acceptance_rate_sane(self):
        result = simulated_annealing(
            6, 4, lambda ch: float(sum(ch)), AnnealConfig(steps=1000, seed=6)
        )
        assert 0.0 < result.acceptance_rate <= 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AnnealConfig(steps=0)
        with pytest.raises(ValueError):
            AnnealConfig(t_start=0.1, t_end=1.0)
        with pytest.raises(ValueError):
            simulated_annealing(0, 4, lambda ch: 0.0)

    def test_bad_start_length(self):
        with pytest.raises(ValueError, match="start has"):
            simulated_annealing(4, 2, lambda ch: 0.0, start=(1,))

    def test_comparable_to_ga_on_mapping_problem(self):
        """Both search strategies find mappings at least as good as the
        round-robin seed on the real objective."""
        app = fft2d_model(128, 4)
        problem = MappingProblem(app, cspi(), 4)
        seed = problem.encode(round_robin_mapping(app, 4))
        ga = genetic_algorithm(
            len(problem.slots), 4, problem.fitness,
            GaConfig(population=20, generations=10, seed=7), seeds=[seed],
        )
        sa = simulated_annealing(
            len(problem.slots), 4, problem.fitness,
            AnnealConfig(steps=800, seed=7), start=seed,
        )
        seed_fit = problem.fitness(seed)
        assert ga.best_fitness <= seed_fit + 1e-12
        assert sa.best_fitness <= seed_fit + 1e-12
