"""C-glue backend tests: the Alter scripts must emit structurally correct C."""

import re

import pytest

from repro.apps import benchmark_mapping, corner_turn_model, fft2d_model
from repro.core.codegen import generate_c_glue
from repro.core.model import ModelError, round_robin_mapping


@pytest.fixture(scope="module")
def c_source():
    app = fft2d_model(256, 4)
    return generate_c_glue(app, benchmark_mapping(app, 4), num_processors=4)


class TestCGlue:
    def test_banner_and_defines(self, c_source):
        assert c_source.startswith("/* === SAGE auto-generated glue code (C backend)")
        assert '#include "sage_runtime.h"' in c_source
        assert "#define SAGE_NUM_PROCESSORS 4" in c_source
        assert "#define SAGE_NUM_FUNCTIONS 4" in c_source
        assert "#define SAGE_NUM_BUFFERS 3" in c_source

    def test_function_table_entries(self, c_source):
        assert "sage_function_desc_t sage_function_table[SAGE_NUM_FUNCTIONS]" in c_source
        for kernel in ("matrix_source", "fft_rows", "fft_cols", "matrix_sink"):
            assert f"sage_kernel_{kernel}" in c_source
        # IDs appear in order
        ids = re.findall(r"\{ /\* id \*/ (\d+),", c_source)
        assert ids[:4] == ["0", "1", "2", "3"]

    def test_buffer_table_striding_info(self, c_source):
        assert "sage_logical_buffer_t sage_buffer_table[SAGE_NUM_BUFFERS]" in c_source
        assert "SAGE_STRIPED" in c_source
        # total size before striding for the 256x256 complex64 matrix
        assert f"{256 * 256 * 8}UL" in c_source

    def test_thread_map_rows(self, c_source):
        rows = re.findall(r"\{ (\d+), (\d+), (\d+) \},", c_source)
        assert len(rows) == 16  # 4 functions x 4 threads
        assert ("1", "2", "2") in rows  # rowfft thread 2 on cpu 2

    def test_registration_entry_point(self, c_source):
        assert "int sage_register_model(sage_runtime_t *rt)" in c_source
        assert "sage_runtime_load" in c_source

    def test_balanced_braces(self, c_source):
        assert c_source.count("{") == c_source.count("}")

    def test_replicated_and_cyclic_codes(self):
        from repro.core.model import (
            ApplicationModel,
            DataType,
            FunctionBlock,
            REPLICATED,
            cyclic,
        )

        t = DataType("m", "complex64", (8, 8))
        app = ApplicationModel("codes")
        src = app.add_block(FunctionBlock("src", kernel="matrix_source"))
        src.add_out("out", t, REPLICATED)
        snk = app.add_block(FunctionBlock("snk", kernel="matrix_sink", threads=2))
        snk.add_in("in", t, cyclic(0))
        app.connect(src.port("out"), snk.port("in"))
        source = generate_c_glue(app, round_robin_mapping(app, 2), num_processors=2)
        assert "SAGE_REPLICATED" in source
        assert "SAGE_CYCLIC" in source

    def test_validation_still_applies(self):
        app = corner_turn_model(64, 4)
        with pytest.raises(ModelError):
            generate_c_glue(app, benchmark_mapping(app, 4), num_processors=2)

    def test_deterministic(self):
        app1, app2 = corner_turn_model(64, 4), corner_turn_model(64, 4)
        s1 = generate_c_glue(app1, benchmark_mapping(app1, 4), num_processors=4)
        s2 = generate_c_glue(app2, benchmark_mapping(app2, 4), num_processors=4)
        assert s1 == s2
