"""Cache-scope tests: per-job namespacing of the process-wide caches.

The registry is deliberately shared across jobs (two jobs submitting the
same design share one striping plan / one generated glue), but clearing is
namespaced: a job's clear evicts only entries it alone owns, so one
tenant's ``clear_all_caches``/``invalidate_mapping_caches`` can never
evict artifacts another live job is using.
"""


from repro.perf.cache import (
    KeyedCache,
    cache_scope,
    cache_stats,
    clear_all_caches,
    current_scope,
    forget_scope,
    invalidate_mapping_caches,
    named_cache,
)
from repro.service import JobSpec, SageService


class TestScopeStack:
    def test_no_scope_by_default(self):
        assert current_scope() is None

    def test_nesting_and_none_passthrough(self):
        with cache_scope("a"):
            assert current_scope() == "a"
            with cache_scope(None):
                assert current_scope() == "a"
            with cache_scope("b"):
                assert current_scope() == "b"
            assert current_scope() == "a"
        assert current_scope() is None


class TestScopedKeyedCache:
    def test_scoped_clear_keeps_other_scopes_entries(self):
        cache = KeyedCache("t")
        with cache_scope("job1"):
            cache.get("shared", lambda: "glue")
            cache.get("mine", lambda: "private")
        with cache_scope("job2"):
            assert cache.get("shared", lambda: "WRONG") == "glue"
        # job1 clears: its exclusive entry goes, the shared one survives
        evicted = cache.clear(scope="job1")
        assert evicted == 1
        assert "mine" not in cache
        assert "shared" in cache

    def test_unscoped_entries_survive_any_scoped_clear(self):
        cache = KeyedCache("t")
        cache.get("global", lambda: 1)          # no scope active
        with cache_scope("job1"):
            cache.get("global", lambda: 1)      # job1 touches it too
        cache.clear(scope="job1")
        assert "global" in cache                # global property survives

    def test_unscoped_clear_still_drops_everything(self):
        cache = KeyedCache("t")
        with cache_scope("job1"):
            cache.get("a", lambda: 1)
        cache.get("b", lambda: 2)
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_forget_scope_detaches_without_evicting(self):
        cache = KeyedCache("t")
        with cache_scope("job1"):
            cache.get("a", lambda: 1)
        cache.forget_scope("job1")
        assert "a" in cache
        # after the detach, job1's clear no longer touches it
        assert cache.clear(scope="job1") == 0
        assert "a" in cache

    def test_per_scope_stats(self):
        cache = KeyedCache("t")
        with cache_scope("job1"):
            cache.get("k", lambda: 1)       # miss
        with cache_scope("job2"):
            cache.get("k", lambda: 1)       # hit
            cache.lookup("absent")          # miss, no insertion
        assert cache.stats("job1") == {"hits": 0, "misses": 1, "size": 1}
        assert cache.stats("job2") == {"hits": 1, "misses": 1, "size": 1}
        # global stats keep counting everything
        assert cache.stats() == {"hits": 1, "misses": 2, "size": 1}

    def test_put_tags_owner(self):
        cache = KeyedCache("t")
        with cache_scope("job1"):
            cache.put("k", "v")
        cache.clear(scope="job1")
        assert "k" not in cache


class TestRegistryScoping:
    def test_clear_all_caches_scoped(self):
        cache = named_cache("test.scoped_clear_all")
        cache.clear()
        with cache_scope("jobA"):
            cache.get("a", lambda: 1)
        with cache_scope("jobB"):
            cache.get("b", lambda: 2)
        assert clear_all_caches(scope="jobA") >= 1
        assert "a" not in cache and "b" in cache
        cache.clear()

    def test_invalidate_mapping_caches_scoped(self):
        cache = named_cache("striping.thread_region")
        with cache_scope("jobA"):
            cache.put(("scope-test", "A"), 1)
        with cache_scope("jobB"):
            cache.put(("scope-test", "B"), 2)
        invalidate_mapping_caches(scope="jobA")
        assert ("scope-test", "A") not in cache
        assert ("scope-test", "B") in cache
        cache.clear(scope="jobB")

    def test_cache_stats_scope_view(self):
        cache = named_cache("test.stats_view")
        with cache_scope("jobZ"):
            cache.get("x", lambda: 1)
        stats = cache_stats("jobZ")
        assert stats["test.stats_view"] == {"hits": 0, "misses": 1, "size": 1}
        forget_scope("jobZ")
        assert cache_stats("jobZ")["test.stats_view"]["size"] == 0
        cache.clear()


class TestServiceCacheSharing:
    def test_concurrent_jobs_share_a_cached_striping_plan(self):
        """Two jobs with the same design both hit the shared artifacts:
        the second job's compile is served from cache, and neither job's
        completion (which clears/forgets its scope) breaks the other."""
        clear_all_caches()
        svc = SageService(nodes=8, seed=1)
        spec = JobSpec(size=32, nodes=2)
        a, b = svc.submit_batch([spec, spec])   # admitted concurrently
        svc.run()
        ra, rb = svc.result(a), svc.result(b)
        assert ra.trace_digest == rb.trace_digest
        # job A compiled cold; job B ran against A's cached artifacts
        assert ra.cache_misses > 0
        assert rb.cache_hits > 0
        assert rb.cache_misses < ra.cache_misses

    def test_one_jobs_clear_cannot_evict_anothers_glue(self):
        clear_all_caches()
        svc = SageService(nodes=8, seed=1)
        spec = JobSpec(size=32, nodes=2)
        a = svc.submit(spec)
        svc.run()
        glue_cache = named_cache("codegen.glue_source")
        size_before = len(glue_cache)
        assert size_before > 0
        # a hostile/buggy tenant clears with its own (different) scope
        with cache_scope("intruder"):
            clear_all_caches(scope="intruder")
        assert len(glue_cache) == size_before
        # and a second identical job still hits
        b = svc.submit(spec)
        svc.run()
        assert svc.result(b).cache_hits > 0
        assert svc.result(a).trace_digest == svc.result(b).trace_digest

    def test_service_runs_leave_no_scope_residue(self):
        svc = SageService(nodes=4, seed=3)
        jid = svc.submit(JobSpec(size=16, nodes=2))
        svc.run()
        assert current_scope() is None
        # the finished job's scope was forgotten: scoped stats are empty
        assert all(row["size"] == 0 for row in cache_stats(jid).values())
