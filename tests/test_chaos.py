"""The chaos subsystem: schedule generation, invariants, and the soak.

The property test at the bottom is the PR's centerpiece promise: *any*
seeded chaos schedule the strongest policy claims to survive completes
with results bitwise identical to the fault-free run.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import (
    CHAOS_KINDS,
    IDENTICAL,
    MAY_ABORT,
    check_probe_stream,
    expected_outcome,
    generate_schedule,
)
from repro.chaos.schedule import ChaosSchedule
from repro.chaos.soak import SOAK_POLICIES, run_baseline, run_schedule, soak
from repro.core.runtime.policy import FaultPolicy
from repro.core.runtime.probes import ProbeEvent, Trace
from repro.machine.faults import FaultPlan

HORIZON = 0.01


# -- schedule generation ------------------------------------------------------

def test_generation_is_pure():
    a = generate_schedule(42, 4, HORIZON)
    b = generate_schedule(42, 4, HORIZON)
    assert a.kinds == b.kinds
    assert a.permanent_crash == b.permanent_crash
    assert a.hard_flap == b.hard_flap
    assert [repr(e) for e in a.plan.events] == [repr(e) for e in b.plan.events]
    assert a.plan.loss_rate == b.plan.loss_rate
    assert a.plan.corruption_rate == b.plan.corruption_rate


def test_different_seeds_differ():
    dumps = {
        (generate_schedule(s, 4, HORIZON).kinds,
         tuple(repr(e) for e in generate_schedule(s, 4, HORIZON).plan.events))
        for s in range(12)
    }
    assert len(dumps) > 1


def test_kind_restriction_and_bounds():
    for seed in range(8):
        s = generate_schedule(seed, 4, HORIZON, kinds=("slow", "jitter"),
                              min_events=2, max_events=4)
        assert set(s.kinds) <= {"slow", "jitter"}
        assert 2 <= len(s.kinds) <= 4


def test_rank0_is_spared_crash_class_faults():
    for seed in range(30):
        s = generate_schedule(seed, 3, HORIZON, kinds=("crash", "join"))
        for event in s.plan.events:
            assert getattr(event, "node", 1) != 0


def test_generation_validates():
    with pytest.raises(ValueError):
        generate_schedule(1, 1, HORIZON)
    with pytest.raises(ValueError):
        generate_schedule(1, 4, 0.0)
    with pytest.raises(ValueError):
        generate_schedule(1, 4, HORIZON, kinds=("meteor",))
    with pytest.raises(ValueError):
        generate_schedule(1, 4, HORIZON, min_events=3, max_events=2)


# -- the expected-outcome capability matrix -----------------------------------

def _sched(kinds, permanent_crash=False, hard_flap=False):
    return ChaosSchedule(seed=0, nodes=2, horizon=HORIZON,
                         kinds=tuple(kinds), plan=FaultPlan(seed=0),
                         permanent_crash=permanent_crash,
                         hard_flap=hard_flap)


def test_expected_outcome_matrix():
    fail_fast = FaultPolicy.fail_fast()
    retry = FaultPolicy.retry()
    ckpt = FaultPolicy.checkpoint_restart()
    shrink = FaultPolicy.shrink_restripe()
    migrate = FaultPolicy.migrate_stragglers()

    # Gray faults cost only time: every policy must survive them.
    for kinds in (("slow",), ("jitter",), ("degrade",), ("hang",)):
        for policy in (fail_fast, retry, ckpt, shrink, migrate):
            assert expected_outcome(_sched(kinds), policy) == IDENTICAL
    # Crashes need checkpoints; permanent ones need shrinking recovery.
    assert expected_outcome(_sched(("crash",)), fail_fast) == MAY_ABORT
    assert expected_outcome(_sched(("crash",)), ckpt) == IDENTICAL
    assert expected_outcome(
        _sched(("crash",), permanent_crash=True), ckpt) == MAY_ABORT
    assert expected_outcome(
        _sched(("crash",), permanent_crash=True), shrink) == IDENTICAL
    # Joins imply a permanent crash first.
    assert expected_outcome(_sched(("join",)), ckpt) == MAY_ABORT
    assert expected_outcome(_sched(("join",)), migrate) == IDENTICAL
    # Loss and corruption need transfer retries.
    assert expected_outcome(_sched(("loss",)), fail_fast) == MAY_ABORT
    assert expected_outcome(_sched(("loss",)), retry) == IDENTICAL
    assert expected_outcome(_sched(("corruption",)), fail_fast) == MAY_ABORT
    # A hard flap severs in-flight transfers; a soft one only slows them.
    assert expected_outcome(
        _sched(("flap",), hard_flap=True), fail_fast) == MAY_ABORT
    assert expected_outcome(
        _sched(("flap",), hard_flap=True), retry) == IDENTICAL
    assert expected_outcome(_sched(("flap",)), fail_fast) == IDENTICAL


# -- the probe-stream checker -------------------------------------------------

def _ev(time, kind, **kw):
    base = dict(function="f", function_id=0, thread=0, processor=0,
                iteration=0)
    base.update(kw)
    return ProbeEvent(time=time, kind=kind, **base)


def test_probe_stream_accepts_well_formed():
    t = Trace()
    for e in (_ev(0.0, "source"), _ev(0.1, "enter"), _ev(0.2, "exit"),
              _ev(0.3, "send"), _ev(0.4, "arrive"), _ev(0.5, "sink")):
        t.record(e)
    assert check_probe_stream(t, processors=1, completed_iterations=1) == []


def test_probe_stream_catches_violations():
    t = Trace()
    t.record(_ev(1.0, "enter"))
    t.record(_ev(0.5, "exit"))             # time goes backwards
    t.record(_ev(1.5, "exit"))             # second exit, one enter
    t.record(_ev(2.0, "arrive"))           # arrival without a send
    t.record(_ev(2.5, "source", processor=7))  # processor out of range
    bad = check_probe_stream(t, processors=1, completed_iterations=1)
    details = "\n".join(str(v) for v in bad)
    assert "backwards" in details
    assert "exit(s)" in details
    assert "arrivals" in details
    assert "processor 7" in details
    assert "no sink record" in details


# -- the soak -----------------------------------------------------------------

def test_soak_smoke_holds_invariants():
    outcomes = soak(seed=5, schedules=2,
                    policies=["fail_fast", "migrate_stragglers"])
    assert len(outcomes) == 4
    for o in outcomes:
        assert o.ok, f"{o.schedule.describe()} under {o.policy}: {o.violations}"
        if o.expectation == IDENTICAL:
            assert o.completed


def test_soak_rejects_unknown_policy():
    with pytest.raises(ValueError):
        soak(schedules=1, policies=["best_effort"])


def test_taxonomy_tags_cover_all_policies():
    assert set(SOAK_POLICIES) == {
        "fail_fast", "retry", "checkpoint_restart", "shrink_restripe",
        "grow_restripe", "migrate_stragglers",
    }
    assert len(CHAOS_KINDS) == 9


# -- the centerpiece property -------------------------------------------------

_BASELINE = None


def _baseline():
    global _BASELINE
    if _BASELINE is None:
        _BASELINE = run_baseline()
    return _BASELINE


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_migrate_stragglers_survives_any_schedule_bitwise(seed):
    """migrate_stragglers claims every capability, so expected_outcome is
    IDENTICAL for *every* generated schedule: the run must complete and its
    per-iteration results must equal the fault-free run's, bit for bit —
    and every structural invariant (quiescence, no leaked slots, probe
    stream) must hold along the way."""
    baseline = _baseline()
    schedule = generate_schedule(seed, 2, baseline.makespan)
    assert expected_outcome(
        schedule, SOAK_POLICIES["migrate_stragglers"]()) == IDENTICAL
    outcome = run_schedule(schedule, "migrate_stragglers", baseline)
    assert outcome.completed, outcome.aborted_with
    assert outcome.ok, outcome.violations
