"""CLI tests for ``python -m repro``."""

import pytest

from repro.__main__ import main
from repro.apps import benchmark_mapping, fft2d_model
from repro.core.model import cspi_hardware, save_design


@pytest.fixture
def design_path(tmp_path):
    app = fft2d_model(32, 2)
    path = str(tmp_path / "design.json")
    save_design(path, app, hardware=cspi_hardware(2),
                mapping=benchmark_mapping(app, 2))
    return path


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "SAGE reproduction" in out


def test_platforms(capsys):
    assert main(["platforms"]) == 0
    out = capsys.readouterr().out
    for vendor in ("CSPI", "Mercury", "SKY", "SIGI"):
        assert vendor in out
    assert "pairwise" in out


def test_kernels(capsys):
    assert main(["kernels"]) == 0
    out = capsys.readouterr().out
    assert "fft_rows" in out
    assert "[radar]" in out


def test_generate_to_stdout(design_path, capsys):
    assert main(["generate", design_path]) == 0
    out = capsys.readouterr().out
    assert "SAGE auto-generated glue code" in out
    assert "FUNCTION_TABLE" in out


def test_generate_to_file(design_path, tmp_path, capsys):
    out_path = str(tmp_path / "glue.py")
    assert main(["generate", design_path, "-o", out_path, "--optimized"]) == 0
    text = open(out_path).read()
    assert "OPTIMIZE_BUFFERS = True" in text


def test_run_design(design_path, capsys):
    assert main(["run", design_path, "--iterations", "2"]) == 0
    out = capsys.readouterr().out
    assert "Visualizer run report" in out
    assert "mean latency" in out


def test_run_with_platform_override(design_path, capsys):
    assert main(["run", design_path, "--platform", "mercury",
                 "--nodes", "2", "--iterations", "1"]) == 0
    assert "timeline" in capsys.readouterr().out


def test_experiment_passthrough(capsys):
    assert main(["period-latency"]) == 0
    out = capsys.readouterr().out
    assert "period vs latency" in out


def test_unknown_command():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


@pytest.fixture
def sage_text_path(tmp_path):
    path = tmp_path / "design.sage"
    path.write_text(
        """
application text_ct
datatype cm complex64 32x32
block src kernel=matrix_source threads=2
  out out cm striped(0)
block turn kernel=block_transpose threads=2
  in in cm striped(1)
  out out cm striped(0)
block sink kernel=matrix_sink threads=2
  in in cm striped(0)
connect src.out -> turn.in
connect turn.out -> sink.in
"""
    )
    return str(path)


def test_generate_from_text_format(sage_text_path, capsys):
    assert main(["generate", sage_text_path, "--nodes", "2"]) == 0
    out = capsys.readouterr().out
    assert "MODEL_NAME = 'text_ct'" in out


def test_run_from_text_format(sage_text_path, capsys):
    assert main(["run", sage_text_path, "--nodes", "2", "--iterations", "1"]) == 0
    assert "Visualizer run report" in capsys.readouterr().out


def test_generate_text_format_requires_nodes(sage_text_path, capsys):
    assert main(["generate", sage_text_path]) == 2
    assert "pass --nodes" in capsys.readouterr().err


def test_code_size_experiment_passthrough(capsys):
    assert main(["code-size"]) == 0
    assert "hand rank pgm" in capsys.readouterr().out
