"""Tests for the §3 code-size experiment."""

import pytest

from repro.experiments.code_size import (
    count_sloc,
    format_code_size,
    run_code_size,
)


class TestCountSloc:
    def test_counts_code_lines_only(self):
        text = '''
# a comment

x = 1
y = 2  # trailing comment still code
'''
        assert count_sloc(text) == 2

    def test_function_docstring_excluded(self):
        def sample():
            """This docstring
            spans lines and is documentation."""
            a = 1
            return a

        assert count_sloc(sample) == 3  # def + two body lines

    def test_plain_text(self):
        assert count_sloc("a\n\nb\n# c\n") == 2


class TestCodeSizeStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_code_size(n=256, nodes=4)

    def test_both_benchmarks_present(self, rows):
        assert [r.app for r in rows] == ["2D FFT", "Corner Turn"]

    def test_model_comparable_or_smaller_than_hand(self, rows):
        """§3: 'comparable ... in code size' — the Designer capture is no
        larger than the hand rank program (and in practice smaller)."""
        for r in rows:
            assert 0 < r.model_sloc <= r.hand_sloc
            assert 0.1 < r.developer_ratio <= 1.0

    def test_glue_is_substantial_but_generated(self, rows):
        for r in rows:
            assert r.glue_sloc > r.model_sloc  # the tool writes more than the user

    def test_glue_scales_with_nodes(self):
        small = {r.app: r.glue_sloc for r in run_code_size(n=256, nodes=2)}
        big = {r.app: r.glue_sloc for r in run_code_size(n=256, nodes=8)}
        for app in small:
            assert big[app] > small[app]  # bigger thread maps

    def test_formatting(self, rows):
        text = format_code_size(rows)
        assert "hand rank pgm" in text
        assert "Corner Turn" in text
