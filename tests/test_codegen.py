"""Glue-code generator tests: the Alter scripts must emit loadable Python
source whose tables faithfully mirror the model."""

import pytest

from repro.core.codegen import generate_glue, load_glue_source
from repro.core.model import (
    ApplicationModel,
    DataType,
    FunctionBlock,
    ModelError,
    REPLICATED,
    round_robin_mapping,
    striped,
)

MTYPE = DataType("m", "complex64", (64, 64))


def build_app(threads=4, n=64):
    t = DataType("m", "complex64", (n, n))
    app = ApplicationModel("fft2d")
    src = app.add_block(
        FunctionBlock("src", kernel="matrix_source", params={"n": n, "seed": 1})
    )
    src.add_out("out", t, striped(0))
    rowfft = app.add_block(FunctionBlock("rowfft", kernel="fft_rows", threads=threads))
    rowfft.add_in("in", t, striped(0))
    rowfft.add_out("out", t, striped(0))
    colfft = app.add_block(FunctionBlock("colfft", kernel="fft_cols", threads=threads))
    colfft.add_in("in", t, striped(1))
    colfft.add_out("out", t, striped(1))
    sink = app.add_block(FunctionBlock("sink", kernel="matrix_sink"))
    sink.add_in("in", t, REPLICATED)
    app.connect(src.port("out"), rowfft.port("in"))
    app.connect(rowfft.port("out"), colfft.port("in"))
    app.connect(colfft.port("out"), sink.port("in"))
    return app


@pytest.fixture
def glue():
    app = build_app()
    return generate_glue(app, round_robin_mapping(app, 4), num_processors=4)


class TestGeneratedSource:
    def test_source_is_python_and_reloadable(self, glue):
        ns = load_glue_source(glue.source)
        assert ns["MODEL_NAME"] == "fft2d"

    def test_header_banner(self, glue):
        assert glue.source.startswith("# === SAGE auto-generated glue code")
        assert "Alter" in glue.source.splitlines()[1]

    def test_function_table_matches_model(self, glue):
        table = glue.function_table
        assert [e["id"] for e in table] == [0, 1, 2, 3]
        assert [e["name"] for e in table] == ["src", "rowfft", "colfft", "sink"]
        assert table[1]["kernel"] == "fft_rows"
        assert table[1]["threads"] == 4
        assert table[0]["params"] == {"n": 64, "seed": 1}

    def test_logical_buffers_carry_striding_info(self, glue):
        bufs = glue.logical_buffers
        assert len(bufs) == 3
        turn = bufs[1]  # rowfft -> colfft
        assert turn["name"] == "rowfft.out->colfft.in"
        assert turn["src_striping"] == {"kind": "striped", "axis": 0, "block": 1}
        assert turn["dst_striping"] == {"kind": "striped", "axis": 1, "block": 1}
        assert turn["shape"] == (64, 64)
        assert turn["elem_bytes"] == 8
        assert turn["total_bytes"] == 64 * 64 * 8  # size *before* striding
        assert turn["src_threads"] == turn["dst_threads"] == 4

    def test_thread_map_covers_all_threads(self, glue):
        # 1 + 4 + 4 + 1 threads
        assert len(glue.thread_map) == 10
        assert glue.processor_of(1, 2) == 2
        assert glue.processor_of(0, 0) == 0

    def test_probes_enter_exit_per_instance(self, glue):
        assert "enter:rowfft" in glue.probes
        assert "exit:sink" in glue.probes
        assert len(glue.probes) == 8

    def test_execution_order_is_topological(self, glue):
        assert glue.execution_order == [0, 1, 2, 3]

    def test_optimize_flag_default_off(self, glue):
        assert glue.optimize_buffers is False

    def test_optimize_flag_on(self):
        app = build_app()
        g = generate_glue(
            app, round_robin_mapping(app, 4), num_processors=4, optimize_buffers=True
        )
        assert g.optimize_buffers is True
        assert "OPTIMIZE_BUFFERS = True" in g.source


class TestGeneratorChecks:
    def test_invalid_model_rejected(self):
        app = ApplicationModel("bad")
        blk = app.add_block(FunctionBlock("b", kernel="k"))
        blk.add_in("in", MTYPE)  # dangling input
        with pytest.raises(ModelError):
            generate_glue(app, round_robin_mapping(app, 2), num_processors=2)

    def test_mapping_out_of_range_rejected(self):
        app = build_app(threads=4)
        mapping = round_robin_mapping(app, 8)
        with pytest.raises(ModelError, match="hardware has only"):
            generate_glue(app, mapping, num_processors=2)

    def test_extra_scripts_appended(self):
        app = build_app()
        extra = [("custom", '(emit-line "CUSTOM_SECTION = " (py-repr "yes"))')]
        glue = generate_glue(
            app, round_robin_mapping(app, 4), num_processors=4, extra_scripts=extra
        )
        assert glue.namespace["CUSTOM_SECTION"] == "yes"

    def test_broken_extra_script_reported_with_name(self):
        app = build_app()
        with pytest.raises(ModelError, match="glue script 'broken'"):
            generate_glue(
                app,
                round_robin_mapping(app, 4),
                num_processors=4,
                extra_scripts=[("broken", "(undefined-fn)")],
            )

    def test_broken_extra_script_caught_before_execution(self):
        # Strict mode lints scripts first: the unbound name is reported as a
        # static-analysis finding, not an interpreter crash mid-traversal.
        app = build_app()
        with pytest.raises(ModelError, match="failed static analysis") as exc:
            generate_glue(
                app,
                round_robin_mapping(app, 4),
                num_processors=4,
                extra_scripts=[("broken", "(undefined-fn)")],
            )
        assert "ALT001" in str(exc.value)

    def test_analyze_false_defers_to_runtime_error(self):
        app = build_app()
        with pytest.raises(ModelError, match="glue script 'broken' failed:"):
            generate_glue(
                app,
                round_robin_mapping(app, 4),
                num_processors=4,
                analyze=False,
                extra_scripts=[("broken", "(undefined-fn)")],
            )

    def test_deadlocking_model_rejected_by_analysis(self):
        from tests.analysis_corpus import cyclic_exchange_model

        app, mapping, nprocs = cyclic_exchange_model()
        with pytest.raises(ModelError):
            generate_glue(app, mapping, num_processors=nprocs, validate=True)
        # Even with Designer validation off, the schedule analysis holds the
        # line — the deadlock is caught without simulating a cycle.
        with pytest.raises(ModelError, match="COMM001"):
            generate_glue(app, mapping, num_processors=nprocs, validate=False)

    def test_missing_globals_detected(self):
        with pytest.raises(ModelError, match="missing globals"):
            load_glue_source("MODEL_NAME = 'x'\n")

    def test_save_writes_file(self, glue, tmp_path):
        path = tmp_path / "glue.py"
        glue.save(str(path))
        assert path.read_text() == glue.source

    def test_string_params_escaped_correctly(self):
        app = ApplicationModel("esc")
        src = app.add_block(
            FunctionBlock("src", kernel="matrix_source", params={"label": "it's \"x\""})
        )
        src.add_out("out", MTYPE)
        snk = app.add_block(FunctionBlock("snk", kernel="matrix_sink"))
        snk.add_in("in", MTYPE)
        app.connect(src.port("out"), snk.port("in"))
        glue = generate_glue(app, round_robin_mapping(app, 1), num_processors=1)
        assert glue.function_table[0]["params"]["label"] == "it's \"x\""


class TestDeterminism:
    def test_same_model_same_source(self):
        app1, app2 = build_app(), build_app()
        g1 = generate_glue(app1, round_robin_mapping(app1, 4), num_processors=4)
        g2 = generate_glue(app2, round_robin_mapping(app2, 4), num_processors=4)
        assert g1.source == g2.source

    def test_different_mapping_changes_only_thread_map(self):
        app = build_app()
        g1 = generate_glue(app, round_robin_mapping(app, 4), num_processors=4)
        g2 = generate_glue(app, round_robin_mapping(app, 2), num_processors=4)
        assert g1.function_table == g2.function_table
        assert g1.thread_map != g2.thread_map
