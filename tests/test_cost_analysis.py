"""Static cost/critical-path predictor tests.

The headline claim: :func:`predict_makespan` tracks the discrete-event
simulator within 25% on the paper's Table-1 kernels — without simulating.
Plus the PERF advisory rules over the seeded corpus, zero findings on the
clean apps, and determinism of the report itself.
"""

import pytest

from tests.analysis_corpus import PERF_SEEDS
from repro.analysis import check_cost, predict_makespan
from repro.apps.models import corner_turn_model, fft2d_model
from repro.core.codegen import generate_glue
from repro.core.model import round_robin_mapping
from repro.core.runtime import DEFAULT_CONFIG, SageRuntime
from repro.machine import Environment, SimCluster, get_platform

#: The ISSUE's acceptance bound: static prediction within 25% of simulation.
ACCURACY = 0.25

_BUILDERS = {"fft2d": fft2d_model, "corner_turn": corner_turn_model}


def _simulated_makespan(app, mapping, nodes, iterations):
    glue = generate_glue(app, mapping, num_processors=nodes)
    env = Environment()
    cluster = SimCluster.from_platform(env, get_platform("cspi"), nodes)
    runtime = SageRuntime(glue, cluster, config=DEFAULT_CONFIG.timing_only())
    return runtime.run(iterations=iterations).makespan


class TestAccuracy:
    @pytest.mark.parametrize("name", sorted(_BUILDERS))
    @pytest.mark.parametrize("nodes", [4, 8])
    def test_within_25_percent_of_simulation(self, name, nodes):
        app = _BUILDERS[name](64, nodes=nodes)
        mapping = round_robin_mapping(app, nodes)
        predicted = predict_makespan(
            app, mapping, nodes, get_platform("cspi"), iterations=5
        ).makespan
        simulated = _simulated_makespan(app, mapping, nodes, iterations=5)
        error = abs(predicted - simulated) / simulated
        assert error <= ACCURACY, (
            f"{name} @ {nodes}n: predicted {predicted:.6f}s vs simulated "
            f"{simulated:.6f}s ({error:.1%} > {ACCURACY:.0%})"
        )

    def test_iterations_scale_serial_makespan(self):
        app = fft2d_model(64, nodes=4)
        mapping = round_robin_mapping(app, 4)
        platform = get_platform("cspi")
        one = predict_makespan(app, mapping, 4, platform, iterations=1)
        five = predict_makespan(app, mapping, 4, platform, iterations=5)
        # default config serializes iterations (max_in_flight=1)
        assert five.makespan == pytest.approx(5 * one.makespan)


class TestSeededDefects:
    @pytest.mark.parametrize(
        "name,factory,rule", PERF_SEEDS, ids=[s[0] for s in PERF_SEEDS]
    )
    def test_seed_triggers_its_rule(self, name, factory, rule):
        app, mapping, nprocs, budget = factory()
        report = predict_makespan(app, mapping, nprocs, get_platform("cspi"))
        findings = check_cost(report, budget=budget)
        assert any(f.rule == rule for f in findings), (
            f"seed {name!r} did not trigger {rule}; got "
            f"{[f.render() for f in findings]}"
        )

    def test_perf_rules_are_advisory(self):
        for name, factory, _rule in PERF_SEEDS:
            app, mapping, nprocs, budget = factory()
            report = predict_makespan(
                app, mapping, nprocs, get_platform("cspi")
            )
            for f in check_cost(report, budget=budget):
                assert f.severity in ("warning", "info"), (name, f.render())


class TestCleanApps:
    @pytest.mark.parametrize("name", sorted(_BUILDERS))
    @pytest.mark.parametrize("nodes", [4, 8])
    def test_zero_findings_on_clean_apps(self, name, nodes):
        app = _BUILDERS[name](64, nodes=nodes)
        mapping = round_robin_mapping(app, nodes)
        report = predict_makespan(app, mapping, nodes, get_platform("cspi"))
        findings = check_cost(report)
        assert not findings, [f.render() for f in findings]


class TestReportShape:
    def test_prediction_is_deterministic(self):
        app = fft2d_model(64, nodes=4)
        mapping = round_robin_mapping(app, 4)
        platform = get_platform("cspi")
        a = predict_makespan(app, mapping, 4, platform, iterations=3)
        b = predict_makespan(app, mapping, 4, platform, iterations=3)
        assert a.to_dict() == b.to_dict()

    def test_report_dict_shape(self):
        app = corner_turn_model(64, nodes=4)
        mapping = round_robin_mapping(app, 4)
        report = predict_makespan(app, mapping, 4, get_platform("cspi"))
        doc = report.to_dict()
        assert doc["platform"].lower() == "cspi"
        assert doc["nprocs"] == 4
        assert doc["makespan_s"] > 0
        assert doc["iteration_latency_s"] > 0
        # link keys are "src->dst" strings with positive byte loads
        for key, nbytes in doc["link_bytes"].items():
            src, _, dst = key.partition("->")
            assert src.isdigit() and dst.isdigit()
            assert nbytes > 0
        # the corner turn is communication-bound: transfers dominate
        assert report.comm_fraction > 0

    def test_accounted_time_is_positive(self):
        app = fft2d_model(64, nodes=4)
        mapping = round_robin_mapping(app, 4)
        report = predict_makespan(app, mapping, 4, get_platform("cspi"))
        assert report.compute_s > 0
        assert report.transfer_s > 0
        assert report.period <= report.iteration_latency
