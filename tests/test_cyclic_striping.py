"""Cyclic / block-cyclic distribution tests: the §2 'complex data
distribution patterns' extension, from region algebra to end-to-end runs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import MatrixProvider, benchmark_mapping
from repro.core.codegen import generate_glue
from repro.core.model import (
    ApplicationModel,
    DataType,
    FunctionBlock,
    REPLICATED,
    cyclic,
    striped,
    validate_application,
)
from repro.core.runtime import (
    RuntimeBuffer,
    SageRuntime,
    message_plan,
    region_elems,
    thread_region,
)
from repro.machine import Environment, SimCluster, cspi


class TestCyclicMessagePlan:
    def test_striped_to_cyclic_is_many_to_many(self):
        plan = message_plan((8, 4), 8, striped(0), 2, cyclic(0), 2)
        # striped thread 0 owns rows 0-3; cyclic thread 0 owns rows 0,2,4,6:
        # every (s, d) pair exchanges two rows.
        pairs = {(m.src_thread, m.dst_thread): m for m in plan}
        assert set(pairs) == {(0, 0), (0, 1), (1, 0), (1, 1)}
        for m in plan:
            assert m.nbytes == 2 * 4 * 8

    def test_cyclic_to_same_cyclic_is_local(self):
        plan = message_plan((8, 4), 8, cyclic(0), 4, cyclic(0), 4)
        assert all(m.src_thread == m.dst_thread for m in plan)

    def test_cyclic_different_blocks_redistribute(self):
        plan = message_plan((8,), 8, cyclic(0, block=1), 2, cyclic(0, block=2), 2)
        # block-1 evens/odds vs block-2 [0,1,4,5]/[2,3,6,7]
        pairs = {(m.src_thread, m.dst_thread) for m in plan}
        assert pairs == {(0, 0), (0, 1), (1, 0), (1, 1)}

    @given(
        st.sampled_from([8, 16, 32]),
        st.integers(1, 4),
        st.integers(1, 4),
        st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_cyclic_plan_exactly_covers_destinations(self, n, st_, dt, block):
        plan = message_plan((n, n), 8, cyclic(0, block=block), st_, striped(1), dt)
        for d in range(dt):
            need = thread_region((n, n), striped(1), dt, d)
            got = sum(m.nbytes for m in plan if m.dst_thread == d)
            assert got == region_elems(need) * 8


class TestCyclicBufferDataPath:
    def make_buffer(self, src_striping, dst_striping, src_threads, dst_threads):
        return RuntimeBuffer(
            {
                "id": 0, "name": "x", "src_function": 0, "src_port": "o",
                "dst_function": 1, "dst_port": "i", "dtype": "float64",
                "shape": (8, 4), "elem_bytes": 8, "total_bytes": 8 * 4 * 8,
                "src_striping": src_striping.to_dict(),
                "dst_striping": dst_striping.to_dict(),
                "src_threads": src_threads, "dst_threads": dst_threads,
            }
        )

    def test_cyclic_write_read_roundtrip(self):
        buf = self.make_buffer(cyclic(0), cyclic(0), 2, 2)
        full = np.arange(32, dtype=np.float64).reshape(8, 4)
        buf.write(0, 0, full[0::2])
        buf.write(0, 1, full[1::2])
        np.testing.assert_array_equal(buf.read(0, 0), full[0::2])
        np.testing.assert_array_equal(buf.read(0, 1), full[1::2])

    def test_striped_to_cyclic_reshuffle(self):
        buf = self.make_buffer(striped(0), cyclic(0), 2, 2)
        full = np.arange(32, dtype=np.float64).reshape(8, 4)
        buf.write(0, 0, full[:4])
        buf.write(0, 1, full[4:])
        np.testing.assert_array_equal(buf.read(0, 0), full[0::2])
        np.testing.assert_array_equal(buf.read(0, 1), full[1::2])

    def test_block_cyclic_axis1(self):
        buf = RuntimeBuffer(
            {
                "id": 0, "name": "x", "src_function": 0, "src_port": "o",
                "dst_function": 1, "dst_port": "i", "dtype": "float64",
                "shape": (4, 8), "elem_bytes": 8, "total_bytes": 4 * 8 * 8,
                "src_striping": REPLICATED.to_dict(),
                "dst_striping": cyclic(1, block=2).to_dict(),
                "src_threads": 1, "dst_threads": 2,
            }
        )
        full = np.arange(32, dtype=np.float64).reshape(4, 8)
        buf.write(0, 0, full)
        np.testing.assert_array_equal(buf.read(0, 0), full[:, [0, 1, 4, 5]])
        np.testing.assert_array_equal(buf.read(0, 1), full[:, [2, 3, 6, 7]])


def cyclic_fft_model(n: int, nodes: int) -> ApplicationModel:
    """2D FFT with *cyclic* row distribution for the row pass.

    Row FFTs are row-independent, so a cyclic layout is numerically
    equivalent to the block layout — the redistribution machinery has to
    work harder, which is the point of the test.
    """
    t = DataType(f"m{n}", "complex64", (n, n))
    app = ApplicationModel(f"cyclic_fft_{n}_{nodes}")
    src = app.add_block(FunctionBlock("src", kernel="matrix_source", threads=nodes,
                                      params={"n": n}))
    src.add_out("out", t, striped(0))
    rowfft = app.add_block(FunctionBlock("rowfft", kernel="fft_rows", threads=nodes))
    rowfft.add_in("in", t, cyclic(0))
    rowfft.add_out("out", t, cyclic(0))
    colfft = app.add_block(FunctionBlock("colfft", kernel="fft_cols", threads=nodes))
    colfft.add_in("in", t, striped(1))
    colfft.add_out("out", t, striped(1))
    sink = app.add_block(FunctionBlock("sink", kernel="matrix_sink", threads=nodes))
    sink.add_in("in", t, striped(1))
    app.connect(src.port("out"), rowfft.port("in"))
    app.connect(rowfft.port("out"), colfft.port("in"))
    app.connect(colfft.port("out"), sink.port("in"))
    return app


class TestCyclicEndToEnd:
    @pytest.mark.parametrize("nodes", [1, 2, 4])
    def test_cyclic_row_fft_matches_numpy(self, nodes):
        n = 32
        provider = MatrixProvider(n, seed=9)
        app = cyclic_fft_model(n, nodes)
        mapping = benchmark_mapping(app, nodes)
        glue = generate_glue(app, mapping, num_processors=nodes)
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), nodes)
        runtime = SageRuntime(glue, cluster)
        result = runtime.run(iterations=1, input_provider=provider)
        np.testing.assert_allclose(
            result.full_result(0), np.fft.fft2(provider(0)), atol=2e-1
        )

    def test_glue_carries_cyclic_block(self):
        app = cyclic_fft_model(32, 2)
        glue = generate_glue(app, benchmark_mapping(app, 2), num_processors=2)
        buf = glue.logical_buffers[0]  # src -> rowfft
        assert buf["dst_striping"] == {"kind": "cyclic", "axis": 0, "block": 1}


class TestCyclicValidation:
    def test_more_threads_than_cyclic_blocks_warns(self):
        t = DataType("tiny", "float32", (2, 8))
        app = ApplicationModel("w")
        src = app.add_block(FunctionBlock("src", kernel="matrix_source"))
        src.add_out("out", t)
        work = app.add_block(FunctionBlock("work", kernel="identity", threads=4))
        work.add_in("in", t, cyclic(0))
        work.add_out("out", t, cyclic(0))
        snk = app.add_block(FunctionBlock("snk", kernel="matrix_sink"))
        snk.add_in("in", t)
        app.connect(src.port("out"), work.port("in"))
        app.connect(work.port("out"), snk.port("in"))
        issues = validate_application(app, strict=False)
        assert any("own no data" in i.message for i in issues)

    def test_bad_block_rejected(self):
        with pytest.raises(ValueError):
            cyclic(0, block=0)

    def test_striping_dict_roundtrip_with_block(self):
        from repro.core.model import Striping

        s = cyclic(1, block=4)
        assert Striping.from_dict(s.to_dict()) == s
        assert "block=4" in s.describe()
