"""Heartbeat failure detector: detection, determinism, false positives."""

import pytest

from repro.faults import FailureDetector, FaultPlan, HeartbeatConfig
from repro.machine import Environment, SimCluster, cspi


def make_detector(nodes=4, plan=None, config=None):
    env = Environment()
    cluster = SimCluster.from_platform(env, cspi(), nodes, fault_plan=plan)
    detector = FailureDetector(cluster, config)
    return env, detector


class TestConfig:
    def test_defaults_valid(self):
        cfg = HeartbeatConfig()
        assert cfg.window == pytest.approx(
            (cfg.miss_grace + cfg.threshold) * cfg.period)

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            HeartbeatConfig(period=0)
        with pytest.raises(ValueError):
            HeartbeatConfig(miss_grace=0.5)
        with pytest.raises(ValueError):
            HeartbeatConfig(threshold=0)

    def test_needs_two_ranks(self):
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), 1)
        with pytest.raises(ValueError, match="at least 2"):
            FailureDetector(cluster)


class TestDetection:
    def test_crashed_node_declared_within_window(self):
        crash_at = 0.002
        plan = FaultPlan().crash_node(2, at=crash_at, permanent=True)
        env, det = make_detector(4, plan=plan)
        det.start()
        declared_at, observer = env.run(until=det.death_event(2))
        assert observer != 2
        latency = declared_at - crash_at
        assert 0 < latency <= 2 * det.config.window

    def test_all_live_observers_converge(self):
        """Gossip spreads the verdict: every live view declares the victim."""
        plan = FaultPlan().crash_node(2, at=0.002, permanent=True)
        env, det = make_detector(4, plan=plan)
        det.start()
        env.run(until=det.death_event(2))
        env.run(until=env.now + 4 * det.config.window)
        for r in (0, 1, 3):
            assert det.dead_according_to(r) == {2}

    def test_death_event_for_already_declared_is_immediate(self):
        plan = FaultPlan().crash_node(1, at=0.001, permanent=True)
        env, det = make_detector(3, plan=plan)
        det.start()
        first = env.run(until=det.death_event(1))
        # A fresh event for an already-declared target fires without waiting.
        assert env.run(until=det.death_event(1)) == first
        assert det.first_detection(1) == tuple(first)

    def test_clear_forgets_a_declaration(self):
        plan = FaultPlan().crash_node(1, at=0.001)  # revivable
        env, det = make_detector(3, plan=plan)
        det.start()
        env.run(until=det.death_event(1))
        det.cluster.faults.revive(1)
        det.clear(1)
        assert det.declared_dead() == set()
        assert det.dead_according_to(0) == set()
        # The revived rank heartbeats again; nobody re-declares it.
        env.run(until=env.now + 4 * det.config.window)
        assert det.declared_dead() == set()

    def test_stop_kills_detector_processes(self):
        env, det = make_detector(3)
        det.start()
        env.run(until=5 * det.config.period)
        det.stop()
        env.run()  # queue drains: no emitter/monitor left ticking
        assert not det.declared_dead()


class TestFalsePositives:
    def test_fault_free_soak_has_zero_false_positives(self):
        """Acceptance: defaults produce no suspicion at all without faults."""
        env, det = make_detector(8)
        det.start()
        env.run(until=500 * det.config.period)
        assert det.log == []
        assert det.declared_dead() == set()

    def test_degraded_link_alone_causes_no_false_positives(self):
        plan = FaultPlan(seed=9).degrade_link(0, 1, at=0.0, factor=0.10)
        env, det = make_detector(4, plan=plan)
        det.start()
        env.run(until=200 * det.config.period)
        assert det.declared_dead() == set()

    def test_heavy_loss_can_cause_false_positives(self):
        """The detector is honest: a lossy-enough fabric silences live ranks."""
        plan = FaultPlan(seed=3).message_loss(0.5)
        env, det = make_detector(3, plan=plan,
                                 config=HeartbeatConfig(threshold=2))
        det.start()
        env.run(until=400 * det.config.period)
        assert det.declared_dead()  # wrongly, by construction: nobody crashed


class TestDeterminism:
    @staticmethod
    def _trace(seed):
        plan = (FaultPlan(seed=seed)
                .message_loss(0.10)
                .crash_node(3, at=0.0015, permanent=True))
        env, det = make_detector(4, plan=plan)
        det.start()
        env.run(until=det.death_event(3))
        env.run(until=env.now + 4 * det.config.window)
        return [(e.time, e.kind, e.observer, e.target) for e in det.log]

    def test_same_seed_reproduces_identical_detection_trace(self):
        assert self._trace(7) == self._trace(7)

    def test_different_seed_changes_the_trace(self):
        # Loss draws differ, so suspicion timings differ.
        assert self._trace(7) != self._trace(8)
