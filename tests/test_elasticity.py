"""Elastic membership: node join, re-grow after shrink, live migration.

Covers the whole stack: simulator/cluster slot hygiene on remove/re-add,
the detector's join/admission handshake, ULFM-dual ``Communicator.grow``,
``grow_mapping`` / incremental re-striping, mapping-scoped cache
invalidation, and the run-time's ``grow_restripe`` policy end to end.
"""

import numpy as np
import pytest

from repro.apps import (
    MatrixProvider,
    benchmark_mapping,
    corner_turn_model,
    fft2d_model,
)
from repro.core.codegen import generate_glue
from repro.core.model import Mapping
from repro.core.model.mapping import grow_mapping, shrink_mapping
from repro.core.runtime import DEFAULT_CONFIG, SageRuntime
from repro.core.runtime.striping import (
    plan_remote_traffic,
    plan_remote_traffic_delta,
)
from repro.faults import FaultPlan, FaultPolicy
from repro.machine import Environment, SimCluster, cspi
from repro.machine.simulator import SimulationError
from repro.mpi import MpiWorld
from repro.mpi.detector import FailureDetector, HeartbeatConfig
from repro.perf.cache import (
    MAPPING_SCOPED_CACHES,
    invalidate_mapping_caches,
    named_cache,
)
from repro.perf.registry import REGISTRY

N = 32
NODES = 8


def make_runtime(builder=fft2d_model, plan=None, policy=None):
    app = builder(N, NODES)
    glue = generate_glue(app, benchmark_mapping(app, NODES),
                         num_processors=NODES)
    env = Environment()
    cluster = SimCluster.from_platform(env, cspi(), NODES, fault_plan=plan)
    return SageRuntime(glue, cluster, config=DEFAULT_CONFIG,
                       fault_policy=policy)


def run(runtime, iterations=6):
    return runtime.run(iterations=iterations, input_provider=MatrixProvider(N))


@pytest.fixture(scope="module")
def baselines():
    """Fault-free runs under the same policy as the elastic runs, so probe
    content (checkpoints, detector chatter) is comparable event for event."""
    return {
        "clean": {
            "fft2d": run(make_runtime(fft2d_model)),
            "corner_turn": run(make_runtime(corner_turn_model)),
        },
        "grow_policy": {
            "fft2d": run(make_runtime(
                fft2d_model, policy=FaultPolicy.grow_restripe())),
            "corner_turn": run(make_runtime(
                corner_turn_model, policy=FaultPolicy.grow_restripe())),
        },
    }


def elastic_plan(base_makespan, kills=1, seed=5):
    """Permanent kills staggered mid-run, same-slot rejoins later."""
    plan = FaultPlan(seed=seed)
    for i in range(kills):
        plan.crash_node(NODES - 1 - i,
                        at=base_makespan * (0.20 + 0.10 * i),
                        permanent=True)
    for i in range(kills):
        plan.join_node(NODES - 1 - i,
                       at=base_makespan * (0.55 + 0.05 * i))
    return plan


# -- machine layer -----------------------------------------------------------

class TestClusterElasticity:
    def test_resource_reset_drops_holders_and_waiters(self):
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), 2)
        node = cluster.node(0)
        failures = []

        def holder():
            req = node.cpu.request()
            yield req
            yield env.timeout(10.0)

        def waiter():
            req = node.cpu.request()
            try:
                yield req
            except SimulationError as exc:
                failures.append(str(exc))

        env.process(holder())
        env.process(waiter())
        env.run(until=0.1)
        assert node.cpu.count == node.cpu.capacity
        dropped = node.reset()
        assert dropped >= 1
        assert node.cpu.count == 0
        env.run(until=0.2)
        assert failures  # the queued waiter was failed, not leaked

    def test_readded_node_starts_with_clean_capacity(self):
        """Satellite: removing a node mid-transfer must not leak slots into
        a replacement that reuses the same id."""
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), 4)

        def transfer():
            yield from cluster.transfer(0, 3, 1 << 20)

        env.process(transfer())
        env.run(until=1e-6)  # mid-flight
        cluster.remove_node(3)
        cluster.add_node(index=3)
        node = cluster.node(3)
        assert node.cpu.count == 0
        assert node.allocated_bytes == 0
        # And the replacement is fully usable.
        done = []

        def transfer2():
            outcome = yield from cluster.transfer(0, 3, 4096)
            done.append(outcome.ok)

        env.process(transfer2())
        env.run(until=env.now + 1.0)
        assert done == [True]

    def test_add_node_new_capacity_gets_fresh_board(self):
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), 4)
        boards_before = dict(cluster.fabric.boards)
        node = cluster.add_node()
        assert node.index == 4
        assert len(cluster) == 5
        assert cluster.fabric.boards[4] not in set(boards_before.values())

    def test_add_node_gap_index_rejected(self):
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), 4)
        with pytest.raises(ValueError):
            cluster.add_node(index=9)


# -- detector join protocol --------------------------------------------------

class TestJoinProtocol:
    def _detector(self, plan=None, nodes=NODES, period=1e-4):
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), nodes,
                                           fault_plan=plan)
        det = FailureDetector(cluster, HeartbeatConfig(period=period)).start()
        return env, cluster, det

    def test_rejoin_after_death_is_admitted(self):
        plan = (FaultPlan(seed=5)
                .crash_node(NODES - 1, at=0.002, permanent=True)
                .join_node(NODES - 1, at=0.005))
        env, cluster, det = self._detector(plan)
        env.run(until=det.death_event(NODES - 1))
        env.run(until=0.0051)
        ev = det.request_join(NODES - 1)
        env.run(until=ev)
        at, coordinator = det.admitted(NODES - 1)
        assert coordinator == 0  # lowest live rank acks
        lat = det.join_latency(NODES - 1)
        assert 0 < lat <= det.config.window
        # The readmitted rank heartbeats again: soak and assert no relapse.
        env.run(until=env.now + 20 * det.config.period)
        assert NODES - 1 not in det.declared_dead()
        det.stop()

    def test_new_rank_join_extends_membership(self):
        env, cluster, det = self._detector(nodes=4)
        env.run(until=0.001)
        cluster.add_node()  # index 4, powered on
        ev = det.request_join(4)
        env.run(until=ev)
        assert det.admitted(4) is not None
        assert det.ranks == [0, 1, 2, 3, 4]
        env.run(until=env.now + 20 * det.config.period)
        assert not det.declared_dead()
        det.stop()

    def test_join_succeeds_over_lossy_channel(self):
        plan = (FaultPlan(seed=23)
                .message_loss(0.30)
                .crash_node(NODES - 1, at=0.002, permanent=True)
                .join_node(NODES - 1, at=0.005))
        env, cluster, det = self._detector(plan)
        env.run(until=det.death_event(NODES - 1))
        env.run(until=0.0051)
        ev = det.request_join(NODES - 1)
        env.run(until=env.any_of([ev, env.timeout(100 * det.config.period)]))
        assert det.admitted(NODES - 1) is not None
        det.stop()

    def test_join_events_are_deterministic(self):
        def trace():
            plan = (FaultPlan(seed=7)
                    .crash_node(3, at=0.002, permanent=True)
                    .join_node(3, at=0.004))
            env, cluster, det = self._detector(plan, nodes=4)
            log = []
            det.subscribe(lambda t, kind, obs, tgt, detail:
                          log.append((t, kind, obs, tgt)))
            env.run(until=det.death_event(3))
            env.run(until=0.0041)
            ev = det.request_join(3)
            env.run(until=ev)
            det.stop()
            return log

        assert trace() == trace()


# -- MPI layer: Communicator.grow -------------------------------------------

class TestCommunicatorGrow:
    @staticmethod
    def _make_world(nodes=4, plan=None):
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), nodes,
                                           fault_plan=plan)
        return MpiWorld(cluster, detector=FailureDetector(cluster))

    def test_shrink_then_grow_restores_membership(self):
        """The canonical elastic cycle at the MPI layer: fail -> shrink ->
        replacement powers on -> grow, with rank stability throughout."""
        plan = (FaultPlan(seed=5)
                .crash_node(3, at=0.001, permanent=True)
                .join_node(3, at=0.003))
        world = self._make_world(4, plan)

        def prog(comm):
            if comm.rank == 3:
                if False:
                    yield
                return None
            # Outlive detection, shrink, then outlive the rejoin and grow.
            yield from comm.world.cluster.node(comm.rank).busy(0.002)
            shrunk = yield from comm.shrink()
            yield from comm.world.cluster.node(comm.rank).busy(0.002)
            grown = yield from shrunk.grow([3])
            return (shrunk.size, grown.rank, grown.size,
                    tuple(grown.members))

        world.spawn(prog)
        results = world.run()
        assert results[3] is None
        for r in (0, 1, 2):
            shrunk_size, rank, size, members = results[r]
            assert shrunk_size == 3
            assert size == 4
            assert members == (0, 1, 2, 3)
            assert rank == r  # rank stability for survivors

    def test_grow_to_brand_new_world_rank(self):
        world = self._make_world(4)
        world.cluster.add_node()  # global rank 4, powered on pre-run

        def prog(comm):
            grown = yield from comm.grow([4])
            # The joiner's endpoint into the grown context is reachable.
            ep = comm.world.endpoint(4, grown.context)
            return (grown.size, tuple(grown.members), ep.rank)

        world.spawn(prog)
        for result in world.run():
            assert result == (5, (0, 1, 2, 3, 4), 4)
        assert world.size == 5


# -- mapping + incremental re-striping ---------------------------------------

class TestGrowMapping:
    def test_replacements_restore_original_home(self):
        original = Mapping({(0, t): t % 4 for t in range(8)})
        current = shrink_mapping(original, [0, 1, 2])
        out = grow_mapping(current, original, {3: 3})
        assert dict(out.items()) == dict(original.items())

    def test_fresh_id_stands_in_for_lost_processor(self):
        original = Mapping({(0, t): t % 4 for t in range(8)})
        current = shrink_mapping(original, [0, 1, 2])
        out = grow_mapping(current, original, {3: 7})
        for t in range(8):
            want = 7 if t % 4 == 3 else t % 4
            assert out.processor_of(0, t) == want

    def test_partial_regrow_composes(self):
        original = Mapping({(0, t): t % 4 for t in range(8)})
        degraded = shrink_mapping(original, [0, 1])
        wave1 = grow_mapping(degraded, original, {2: 2})
        wave2 = grow_mapping(wave1, original, {3: 3})
        assert dict(wave2.items()) == dict(original.items())


class TestRemoteTrafficDelta:
    def _plan(self):
        app = fft2d_model(N, NODES)
        glue = generate_glue(app, benchmark_mapping(app, NODES),
                             num_processors=NODES)
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), NODES)
        runtime = SageRuntime(glue, cluster, config=DEFAULT_CONFIG)
        return runtime.buffers[0].plan

    def test_delta_matches_full_recompute(self):
        plan = self._plan()
        old_src = lambda t: t % NODES  # noqa: E731
        old_dst = lambda t: t % NODES  # noqa: E731
        new_src = lambda t: 0 if t == 2 else t % NODES  # noqa: E731
        new_dst = lambda t: 0 if t == 5 else t % NODES  # noqa: E731
        send0, recv0 = plan_remote_traffic(plan, old_src, old_dst)
        got_send, got_recv = plan_remote_traffic_delta(
            plan, send0, recv0, old_src, old_dst, new_src, new_dst,
            {2}, {5})
        want_send, want_recv = plan_remote_traffic(plan, new_src, new_dst)
        assert got_send == want_send
        assert got_recv == want_recv
        # Inputs were not mutated.
        assert (send0, recv0) == plan_remote_traffic(plan, old_src, old_dst)

    def test_delta_visits_only_moved_threads(self):
        plan = self._plan()
        proc = lambda t: t % NODES  # noqa: E731
        send0, recv0 = plan_remote_traffic(plan, proc, proc)
        before = REGISTRY.counters.get("striping.replan_delta_messages", 0)
        plan_remote_traffic_delta(plan, send0, recv0, proc, proc,
                                  proc, proc, {3}, set())
        visited = (REGISTRY.counters["striping.replan_delta_messages"]
                   - before)
        touching = sum(1 for m in plan if m.src_thread == 3)
        assert visited == touching < len(plan)


# -- cache invalidation (satellite) ------------------------------------------

class TestMappingCacheInvalidation:
    def test_invalidate_clears_exactly_the_mapping_scoped_caches(self):
        for name in MAPPING_SCOPED_CACHES:
            named_cache(name).put(("sentinel", name), object())
        other = named_cache("alter.ast")
        other.put(("sentinel",), object())
        evicted = invalidate_mapping_caches()
        assert evicted >= len(MAPPING_SCOPED_CACHES)
        for name in MAPPING_SCOPED_CACHES:
            assert ("sentinel", name) not in named_cache(name)
        assert ("sentinel",) in other
        other.clear()

    @pytest.mark.parametrize("event", ["shrink", "grow"])
    def test_no_stale_mapping_artifact_survives_membership_change(
            self, baselines, event):
        """Regression: every mapping-scoped cache is dropped when the
        membership changes.  Sentinels planted before the run must be gone
        afterwards — post-change repopulation cannot resurrect them."""
        base = baselines["clean"]["fft2d"]
        plan = FaultPlan(seed=5).crash_node(
            NODES - 1, at=base.makespan * 0.3, permanent=True)
        if event == "grow":
            plan.join_node(NODES - 1, at=base.makespan * 0.6)
            policy = FaultPolicy.grow_restripe()
        else:
            policy = FaultPolicy.shrink_restripe()
        runtime = make_runtime(fft2d_model, plan=plan, policy=policy)
        for name in MAPPING_SCOPED_CACHES:
            named_cache(name).put(("stale-mapping-sentinel",), object())
        result = run(runtime)
        assert result.trace.by_kind(event)
        for name in MAPPING_SCOPED_CACHES:
            assert ("stale-mapping-sentinel",) not in named_cache(name), name


# -- run-time end to end -----------------------------------------------------

APP_EVENT_KINDS = ("enter", "exit", "send", "arrive", "source", "sink",
                   "checkpoint")


def structural_events(result, from_iteration):
    """Time-stripped canonical events from ``from_iteration`` onwards."""
    return [
        (e.kind, e.function, e.function_id, e.thread, e.processor,
         e.iteration, e.detail, e.nbytes)
        for e in result.trace
        if e.kind in APP_EVENT_KINDS and e.iteration >= from_iteration
    ]


class TestGrowRestripe:
    @pytest.mark.parametrize("app_name,builder",
                             [("fft2d", fft2d_model),
                              ("corner_turn", corner_turn_model)])
    def test_full_cycle_bitwise_and_fully_restored(self, baselines,
                                                   app_name, builder):
        """Acceptance: crash -> shrink -> rejoin -> migrate completes with
        bitwise-identical results and ends back at the original mapping."""
        base = baselines["clean"][app_name]
        runtime = make_runtime(builder, plan=elastic_plan(base.makespan),
                               policy=FaultPolicy.grow_restripe())
        result = run(runtime)
        for k in range(6):
            assert np.array_equal(result.full_result(k), base.full_result(k))
        for kind in ("shrink", "restripe", "join", "grow", "migrate"):
            assert result.trace.by_kind(kind), kind
        # Fully restored: no overrides left, all processors active again.
        assert runtime._proc_override == {}
        assert sorted(runtime._active_processors) == list(range(NODES))
        assert runtime._lost_processors == []

    @pytest.mark.parametrize("kills", [2, 3])
    def test_multi_node_replacement(self, baselines, kills):
        base = baselines["clean"]["corner_turn"]
        runtime = make_runtime(
            corner_turn_model,
            plan=elastic_plan(base.makespan, kills=kills, seed=6),
            policy=FaultPolicy.grow_restripe(max_restarts=kills + 2))
        result = run(runtime)
        for k in range(6):
            assert np.array_equal(result.full_result(k), base.full_result(k))
        assert runtime._proc_override == {}
        assert sorted(runtime._active_processors) == list(range(NODES))

    def test_post_migration_trace_matches_from_scratch_run(self, baselines):
        """Acceptance: after the migration, the probe trace is byte-identical
        (modulo the virtual-time offset the recovery added) to a from-scratch
        run at the final mapping — which, for same-slot replacement, is the
        fault-free run under the same policy."""
        base = baselines["grow_policy"]["fft2d"]
        clean_makespan = baselines["clean"]["fft2d"].makespan
        runtime = make_runtime(fft2d_model,
                               plan=elastic_plan(clean_makespan),
                               policy=FaultPolicy.grow_restripe())
        result = run(runtime)
        migrates = result.trace.by_kind("migrate")
        assert migrates
        k_grow = migrates[-1].iteration
        assert k_grow < 5  # post-migration iterations exist to compare
        assert (structural_events(result, k_grow)
                == structural_events(base, k_grow))

    def test_throughput_restored_within_5pct(self, baselines):
        """Acceptance: steady-state rate after re-grow is within 5% of the
        pre-failure rate (same-policy fault-free baseline)."""
        base = baselines["grow_policy"]["fft2d"]
        base_intervals = np.diff(base.sink_times)
        runtime = make_runtime(
            fft2d_model,
            plan=elastic_plan(baselines["clean"]["fft2d"].makespan),
            policy=FaultPolicy.grow_restripe())
        result = run(runtime)
        t_migrate = max(e.time for e in result.trace.by_kind("migrate"))
        post = [t for t in result.sink_times if t > t_migrate]
        assert len(post) >= 2
        recovered = float(np.mean(np.diff(post)))
        baseline = float(np.mean(base_intervals[-len(post) + 1:]))
        assert recovered == pytest.approx(baseline, rel=0.05)

    def test_incremental_restripe_no_full_recompute(self, baselines):
        """Acceptance: membership changes re-plan through the delta path
        only — zero full recomputes after runtime construction, and the
        delta visits fewer messages than one full sweep would."""
        base = baselines["clean"]["fft2d"]
        runtime = make_runtime(fft2d_model, plan=elastic_plan(base.makespan),
                               policy=FaultPolicy.grow_restripe())
        total_plan = sum(len(buf.plan) for buf in runtime.buffers)
        before = dict(REGISTRY.counters)

        def counted(name):
            return REGISTRY.counters.get(name, 0) - before.get(name, 0)

        result = run(runtime)
        assert result.trace.by_kind("migrate")
        assert counted("striping.replan_full") == 0
        assert counted("striping.replan_delta") > 0
        changes = (len(result.trace.by_kind("shrink"))
                   + len(result.trace.by_kind("grow")))
        assert 0 < counted("striping.replan_delta_messages") \
            < changes * total_plan

    def test_migration_pause_recorded(self, baselines):
        base = baselines["clean"]["fft2d"]
        before = REGISTRY.timers.get("runtime.migration_pause_s")
        count_before = before.count if before else 0
        runtime = make_runtime(fft2d_model, plan=elastic_plan(base.makespan),
                               policy=FaultPolicy.grow_restripe())
        run(runtime)
        stats = REGISTRY.timers["runtime.migration_pause_s"]
        assert stats.count == count_before + 1
        assert stats.max > 0

    def test_shrink_policy_ignores_joins(self, baselines):
        """shrink_restripe never re-grows: the join is announced but the
        run completes degraded."""
        base = baselines["clean"]["fft2d"]
        runtime = make_runtime(fft2d_model, plan=elastic_plan(base.makespan),
                               policy=FaultPolicy.shrink_restripe())
        result = run(runtime)
        for k in range(6):
            assert np.array_equal(result.full_result(k), base.full_result(k))
        assert not result.trace.by_kind("grow")
        assert not result.trace.by_kind("migrate")
        assert sorted(runtime._active_processors) == list(range(NODES - 1))

    def test_cycle_is_deterministic(self, baselines):
        base_makespan = baselines["clean"]["fft2d"].makespan

        def cycle_trace():
            runtime = make_runtime(fft2d_model,
                                   plan=elastic_plan(base_makespan),
                                   policy=FaultPolicy.grow_restripe())
            result = run(runtime)
            return result.makespan, [
                (e.time, e.kind, e.processor, e.detail)
                for e in result.trace
                if e.kind in ("suspect", "declare_dead", "shrink",
                              "restripe", "join", "grow", "migrate",
                              "checkpoint", "restore")
            ]

        assert cycle_trace() == cycle_trace()
