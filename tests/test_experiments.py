"""Experiment-harness tests: the §3.3 protocol machinery and the reproduced
shapes of every paper artifact (fast, reduced-protocol versions; the full
numbers live in EXPERIMENTS.md)."""

import pytest

from repro.experiments import (
    Protocol,
    format_atot_study,
    format_crossvendor,
    format_period_latency,
    format_table1,
    knob_study,
    measure_hand,
    measure_sage,
    optimized_glue_study,
    run_atot_study,
    run_crossvendor,
    run_period_latency,
    run_table1,
    two_node_study,
)
from repro.experiments.table1 import averages
from repro.machine import cspi

FAST = Protocol(runs=2, iterations=5)
EXACT = Protocol(runs=1, iterations=5, jitter_sigma=0.0)


class TestProtocol:
    def test_defaults_match_paper(self):
        p = Protocol()
        assert p.runs == 10 and p.iterations == 100

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            Protocol(runs=0)
        with pytest.raises(ValueError):
            Protocol(jitter_sigma=-1)

    def test_jitter_zero_gives_identical_runs(self):
        m = measure_hand("corner_turn", cspi(), 4, 128, Protocol(runs=3, iterations=3, jitter_sigma=0))
        assert len(set(m.run_latencies)) == 1
        assert m.latency_stdev == 0.0

    def test_jitter_spreads_runs_deterministically(self):
        m1 = measure_hand("corner_turn", cspi(), 4, 128, Protocol(runs=3, iterations=3))
        m2 = measure_hand("corner_turn", cspi(), 4, 128, Protocol(runs=3, iterations=3))
        assert m1.run_latencies == m2.run_latencies  # seeded
        assert len(set(m1.run_latencies)) == 3       # but spread

    def test_unknown_app(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            measure_hand("matmul", cspi(), 4, 128, FAST)


class TestMeasurements:
    def test_sage_slower_than_hand(self):
        h = measure_hand("fft2d", cspi(), 4, 256, EXACT)
        s = measure_sage("fft2d", cspi(), 4, 256, EXACT)
        assert s.latency > h.latency

    def test_optimized_between_default_and_hand(self):
        h = measure_hand("corner_turn", cspi(), 4, 256, EXACT)
        s = measure_sage("corner_turn", cspi(), 4, 256, EXACT)
        o = measure_sage("corner_turn", cspi(), 4, 256, EXACT, optimize_buffers=True)
        assert h.latency < o.latency < s.latency

    def test_measurement_variant_labels(self):
        s = measure_sage("corner_turn", cspi(), 2, 128, EXACT)
        o = measure_sage("corner_turn", cspi(), 2, 128, EXACT, optimize_buffers=True)
        assert s.variant == "sage" and o.variant == "sage_optimized"


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table1(EXACT, node_counts=(4, 8), sizes=(256, 512))

    def test_row_count(self, rows):
        assert len(rows) == 2 * 2 * 2  # apps x nodes x sizes

    def test_sage_in_paper_band(self, rows):
        """Every cell between 60 and 95 % of hand-coded (paper cells ~70-93)."""
        for r in rows:
            assert 60.0 < r.pct_of_hand < 95.0, f"{r.app} {r.nodes}n {r.size}: {r.pct_of_hand:.1f}%"

    def test_fft_beats_corner_turn_efficiency(self, rows):
        """Paper: FFT ~17-20% overhead, corner turn ~20-25%: FFT pct higher."""
        avg = averages(rows)
        assert avg["2D FFT"] > avg["Corner Turn"]

    def test_overall_average_near_paper(self, rows):
        """§4: 'delivered and executed the two benchmark applications at
        77.5% of hand code versions' — we accept 70-87."""
        assert 70.0 < averages(rows)["overall"] < 87.0

    def test_more_nodes_lower_latency(self, rows):
        for app in ("fft2d", "corner_turn"):
            for size in (256, 512):
                cells = {r.nodes: r for r in rows if r.app == app and r.size == size}
                assert cells[8].sage_ms < cells[4].sage_ms
                assert cells[8].hand_ms < cells[4].hand_ms

    def test_formatting(self, rows):
        text = format_table1(rows)
        assert "Table 1.0" in text
        assert "2D FFT" in text and "Corner Turn" in text
        assert "Average overall" in text


class TestCrossVendor:
    @pytest.fixture(scope="class")
    def result(self):
        return run_crossvendor(EXACT, size=512, node_counts=(2, 4, 8))

    def test_all_series_present(self, result):
        assert set(result.latency_ms) == {"fft2d", "corner_turn"}
        for series in result.latency_ms.values():
            assert set(series) == {"mercury", "cspi", "sky", "sigi"}

    def test_latency_decreases_with_nodes(self, result):
        for app, series in result.latency_ms.items():
            for vendor, per_nodes in series.items():
                assert per_nodes[8] < per_nodes[2], f"{app}/{vendor}"

    def test_fabric_ordering_on_corner_turn(self, result):
        """Corner turn is fabric-bound: SIGI (slowest bus) loses to Mercury
        and SKY (fastest fabrics) at every node count."""
        ct = result.latency_ms["corner_turn"]
        for nodes in (4, 8):
            assert ct["sigi"][nodes] > ct["mercury"][nodes]
            assert ct["sigi"][nodes] > ct["sky"][nodes]

    def test_fft_less_fabric_sensitive_than_corner_turn(self, result):
        """Vendor spread (max/min) is wider for the corner turn than the
        compute-bound FFT."""
        def spread(app, nodes):
            vals = [result.latency_ms[app][v][nodes] for v in result.latency_ms[app]]
            return max(vals) / min(vals)

        assert spread("corner_turn", 8) > spread("fft2d", 8)

    def test_formatting(self, result):
        text = format_crossvendor(result)
        assert "Cross-vendor" in text
        assert "log scale" in text


class TestAblations:
    def test_two_node_study_shape(self):
        rows = two_node_study(EXACT, size=512)
        assert [r["nodes"] for r in rows] == [2, 4, 8]
        # §3.4: the absolute unique-buffer overhead is largest at 2 nodes.
        extras = [r["extra_ms"] for r in rows]
        assert extras[0] > extras[1] > extras[2]
        # And SAGE is slower than hand everywhere.
        assert all(r["pct_of_hand"] < 100 for r in rows)

    def test_optimized_glue_reaches_paper_target(self):
        rows = optimized_glue_study(EXACT, node_counts=(4, 8), sizes=(512,))
        import statistics

        avg_default = statistics.fmean(r["default_pct"] for r in rows)
        avg_opt = statistics.fmean(r["optimized_pct"] for r in rows)
        # §4: default ~77.5%, optimised "levels of 90%".
        assert avg_opt > avg_default
        assert 84.0 < avg_opt <= 100.0

    def test_knob_study_every_knob_helps(self):
        rows = knob_study(EXACT, app="corner_turn", nodes=4, size=512)
        base = next(r for r in rows if r["knob"] == "baseline (all on)")
        for r in rows:
            if r is base:
                continue
            assert r["pct_of_hand"] >= base["pct_of_hand"] - 1e-6, r["knob"]
        # staging copies are the dominant mechanism for the corner turn
        no_send = next(r for r in rows if r["knob"] == "no send staging")
        no_disp = next(r for r in rows if r["knob"] == "no dispatch")
        assert no_send["pct_of_hand"] > no_disp["pct_of_hand"]


class TestAtotStudy:
    def test_ga_not_worse_than_baselines(self):
        rows = run_atot_study(nodes=4, n=128, generations=8)
        by = {r.strategy: r for r in rows}
        assert by["atot_ga"].fitness <= by["round_robin"].fitness + 1e-9
        assert by["atot_ga"].fitness <= by["random"].fitness + 1e-9

    def test_random_mapping_hurts_simulated_latency(self):
        rows = run_atot_study(nodes=4, n=128, generations=8)
        by = {r.strategy: r for r in rows}
        assert by["random"].simulated_latency_ms > by["atot_ga"].simulated_latency_ms

    def test_formatting(self):
        rows = run_atot_study(nodes=2, n=64, generations=4)
        text = format_atot_study(rows)
        assert "atot_ga" in text and "round_robin" in text


class TestPeriodLatency:
    @pytest.fixture(scope="class")
    def points(self):
        return run_period_latency(nodes=4, size=256, iterations=10)

    def test_pipelined_period_below_latency(self, points):
        by = {p.mode: p for p in points}
        assert by["pipelined-depth2"].period_ms < by["pipelined-depth2"].latency_ms

    def test_serial_period_at_least_latency(self, points):
        serial = points[0]
        assert serial.period_ms >= serial.latency_ms * 0.99

    def test_throttled_period_tracks_interval(self, points):
        throttled = points[-1]
        # interval was set to 2x the serial latency
        serial = points[0]
        assert throttled.period_ms == pytest.approx(2 * serial.latency_ms, rel=0.05)

    def test_formatting(self, points):
        assert "period vs latency" in format_period_latency(points)


class TestReconfiguration:
    @pytest.fixture(scope="class")
    def detection(self):
        from repro.experiments import run_detection_latency

        return run_detection_latency(periods=(1e-4, 4e-4), nodes=4,
                                     seeds=(21,))

    def test_latency_within_window_and_scales_with_period(self, detection):
        for p in detection:
            assert 0 < p.latency <= 2 * p.window
        assert detection[1].latency > detection[0].latency

    def test_fault_free_soak_has_zero_false_positives(self):
        from repro.experiments import run_false_positives

        points = run_false_positives(nodes=4, soak_periods=120)
        by = {p.scenario: p for p in points}
        assert by["fault-free"].false_positives == 0
        assert by["fault-free"].suspects == 0
        assert by["link 0-1 @ 10%"].false_positives == 0

    def test_shrink_recovery_completes_degraded(self):
        from repro.experiments import run_shrink_recovery

        points = run_shrink_recovery(nodes=8, size=32, iterations=3,
                                     kill_counts=(1,))
        assert points and all(p.completed for p in points)
        for p in points:
            assert p.overhead_pct > 0
            assert p.throughput < p.baseline_throughput
            assert p.detect_ms > 0 and p.restripe_bytes > 0

    def test_formatting(self, detection):
        from repro.experiments import (
            format_reconfiguration,
            run_false_positives,
            run_shrink_recovery,
        )

        text = format_reconfiguration(
            detection,
            run_false_positives(nodes=4, soak_periods=40),
            run_shrink_recovery(nodes=8, size=32, iterations=3,
                                kill_counts=(1,)),
        )
        assert "Detection latency" in text and "False positives" in text
        assert "Shrinking recovery" in text and "fft2d" in text
