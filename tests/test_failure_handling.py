"""Failure-injection tests: the runtime must fail loudly and legibly when
kernels crash, glue is tampered with, or the dataflow wedges."""

import numpy as np
import pytest

from repro.apps import MatrixProvider, benchmark_mapping, corner_turn_model
from repro.core.codegen import generate_glue, load_glue_source
from repro.core.model import ModelError
from repro.core.runtime import (
    DEFAULT_CONFIG,
    KernelBinding,
    KernelError,
    RuntimeError_,
    SageRuntime,
)
from repro.machine import Environment, SimCluster, SimulationError, cspi


def make_runtime(nodes=2, n=16, bindings=None, config=None):
    app = corner_turn_model(n, nodes)
    glue = generate_glue(app, benchmark_mapping(app, nodes), num_processors=nodes)
    env = Environment()
    cluster = SimCluster.from_platform(env, cspi(), nodes)
    return SageRuntime(
        glue, cluster, config=config or DEFAULT_CONFIG, bindings=bindings
    ), glue


class TestKernelFailures:
    def test_crashing_kernel_surfaces_with_context(self):
        def explode(ctx, inputs):
            raise ZeroDivisionError("numeric blowup")

        bad = KernelBinding("block_transpose", explode, lambda ctx, ins: 0.0)
        runtime, _ = make_runtime(bindings={"block_transpose": bad})
        with pytest.raises(RuntimeError_, match="block_transpose.*turn.*numeric blowup"):
            runtime.run(iterations=1, input_provider=MatrixProvider(16))

    def test_kernel_error_passes_through_unwrapped(self):
        def refuse(ctx, inputs):
            raise KernelError("unsupported configuration")

        bad = KernelBinding("block_transpose", refuse, lambda ctx, ins: 0.0)
        runtime, _ = make_runtime(bindings={"block_transpose": bad})
        with pytest.raises(KernelError, match="unsupported configuration"):
            runtime.run(iterations=1, input_provider=MatrixProvider(16))

    def test_kernel_missing_output_port(self):
        def lazy(ctx, inputs):
            return {}  # produces nothing

        bad = KernelBinding("block_transpose", lazy, lambda ctx, ins: 0.0)
        runtime, _ = make_runtime(bindings={"block_transpose": bad})
        with pytest.raises(RuntimeError_, match="produced no data for port"):
            runtime.run(iterations=1, input_provider=MatrixProvider(16))

    def test_kernel_wrong_shape_output(self):
        def wrong(ctx, inputs):
            (port,) = ctx.out_regions.keys()
            return {port: np.zeros((3, 3), dtype="complex64")}

        bad = KernelBinding("block_transpose", wrong, lambda ctx, ins: 0.0)
        runtime, _ = make_runtime(bindings={"block_transpose": bad})
        with pytest.raises(Exception, match="region needs"):
            runtime.run(iterations=1, input_provider=MatrixProvider(16))

    def test_provider_exception_reaches_caller(self):
        runtime, _ = make_runtime()

        def broken_provider(k):
            raise IOError("sensor offline")

        with pytest.raises(Exception, match="sensor offline"):
            runtime.run(iterations=1, input_provider=broken_provider)


class TestGlueTampering:
    def test_missing_table_rejected(self):
        with pytest.raises(ModelError, match="missing globals"):
            load_glue_source("MODEL_NAME='x'\nNUM_PROCESSORS=1\n")

    def test_syntax_error_in_glue(self):
        with pytest.raises(SyntaxError):
            load_glue_source("def broken(:\n")

    def test_thread_map_hole_detected_at_run(self):
        runtime, glue = make_runtime()
        # remove one thread's mapping after load
        key = next(iter(glue.thread_map))
        del glue.namespace["THREAD_MAP"][key]
        with pytest.raises(KeyError):
            runtime.run(iterations=1, input_provider=MatrixProvider(16))


class TestDeadlockDetection:
    def test_missing_message_reports_deadlock(self):
        """If an arrival event is never triggered, the simulator names the
        problem instead of hanging forever."""
        runtime, _ = make_runtime(config=DEFAULT_CONFIG.timing_only())

        # Sabotage: the transport "loses" every message (the generator ends
        # without firing the arrival event), so receivers wait forever.
        def lossy_transfer(buf, msg, iteration, entry):
            if False:
                yield None

        runtime._transfer_proc = lossy_transfer
        with pytest.raises(SimulationError, match="deadlock"):
            runtime.run(iterations=1)
