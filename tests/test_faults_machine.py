"""Machine-layer fault injection: plans, crashes, hangs, links, determinism."""

import pytest

from repro.faults import (
    CORRUPTED,
    DELIVERED,
    LOST,
    FaultInjector,
    FaultPlan,
    LinkFailure,
    NodeFailure,
)
from repro.machine import Environment, SimCluster, cspi


def make_cluster(plan=None, nodes=2):
    env = Environment()
    cluster = SimCluster.from_platform(env, cspi(), nodes, fault_plan=plan)
    return env, cluster


def transfer_time(env, cluster, src=0, dst=1, nbytes=1 << 20, start=0.0):
    """Run one transfer and return (elapsed, outcome)."""
    out = {}

    def prog():
        if start > 0:
            yield env.timeout(start)
        t0 = env.now
        outcome = yield from cluster.transfer(src, dst, nbytes)
        out["elapsed"] = env.now - t0
        out["outcome"] = outcome

    env.process(prog())
    env.run()
    return out["elapsed"], out["outcome"]


class TestPlanValidation:
    def test_negative_fault_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan().crash_node(0, at=-1.0)

    def test_bad_degrade_factor_rejected(self):
        for factor in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="factor"):
                FaultPlan().degrade_link(0, 1, at=0.0, factor=factor)

    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError, match="loss rate"):
            FaultPlan().message_loss(1.0)
        with pytest.raises(ValueError, match="corruption rate"):
            FaultPlan().message_corruption(-0.1)

    def test_nonpositive_durations_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            FaultPlan().hang_node(0, at=0.0, duration=0.0)
        with pytest.raises(ValueError, match="duration"):
            FaultPlan().drop_link(0, 1, at=0.0, duration=-1.0)

    def test_empty_and_describe(self):
        assert FaultPlan().is_empty
        plan = FaultPlan(seed=3).crash_node(1, at=0.5).message_loss(0.05)
        assert not plan.is_empty
        assert "NodeCrash" in plan.describe()
        assert "loss=0.05" in plan.describe()

    def test_empty_plan_installs_no_injector(self):
        _, cluster = make_cluster(FaultPlan())
        assert cluster.faults is None


class TestNodeFaults:
    def test_crash_fails_inflight_compute_naming_node_and_time(self):
        env, cluster = make_cluster(FaultPlan().crash_node(1, at=1e-4))
        node = cluster.node(1)

        def prog():
            # ~1ms of work: the crash at t=0.1ms lands mid-computation and
            # must surface when the operation completes.
            yield from node.compute(node.spec.mflops * 1e6 * 1e-3)

        env.process(prog())
        with pytest.raises(NodeFailure, match=r"node 1 crashed at t=0.000100"):
            env.run()

    def test_crash_fails_transfers_touching_the_node(self):
        env, cluster = make_cluster(FaultPlan().crash_node(1, at=0.0))

        def prog():
            yield env.timeout(1e-6)
            yield from cluster.transfer(0, 1, 1024)

        env.process(prog())
        with pytest.raises(NodeFailure) as err:
            env.run()
        assert err.value.node == 1

    def test_hang_delays_work_without_failing_it(self):
        done = {}

        def busy(env, cluster):
            # Start strictly after the hang has seized the CPU.
            yield env.timeout(1e-6)
            yield from cluster.node(0).busy(1e-3)
            done["t"] = env.now

        env, cluster = make_cluster()
        env.process(busy(env, cluster))
        env.run()
        clean = done["t"]
        assert clean == pytest.approx(1e-6 + 1e-3)

        env, cluster = make_cluster(
            FaultPlan().hang_node(0, at=0.0, duration=5e-3)
        )
        env.process(busy(env, cluster))
        env.run()
        # The CPU is held until t=5ms; the 1ms of work runs after that.
        assert done["t"] == pytest.approx(5e-3 + 1e-3)

    def test_revive_and_permanence(self):
        env, cluster = make_cluster(
            FaultPlan().crash_node(0, at=0.0).crash_node(1, at=0.0,
                                                         permanent=True)
        )
        env.run()  # apply the schedule
        inj = cluster.faults
        assert inj.dead_nodes == [0, 1]
        with pytest.raises(NodeFailure):
            inj.check_node(0)
        assert inj.revive(0) is True
        assert inj.alive(0)
        assert inj.revive(1) is False  # permanent
        assert inj.revive_all() == []  # nothing revivable left
        assert inj.dead_nodes == [1]


class TestLinkFaults:
    def test_drop_raises_link_failure(self):
        env, cluster = make_cluster(FaultPlan().drop_link(0, 1, at=0.0))

        def prog():
            yield env.timeout(1e-6)
            yield from cluster.transfer(0, 1, 1024)

        env.process(prog())
        with pytest.raises(LinkFailure, match="0<->1 down"):
            env.run()

    def test_drop_is_undirected(self):
        env, cluster = make_cluster(FaultPlan().drop_link(1, 0, at=0.0))
        assert cluster.faults is not None

        def prog():
            yield env.timeout(1e-6)
            yield from cluster.transfer(0, 1, 1024)

        env.process(prog())
        with pytest.raises(LinkFailure):
            env.run()

    def test_drop_with_duration_heals(self):
        env, cluster = make_cluster(
            FaultPlan().drop_link(0, 1, at=0.0, duration=1e-3)
        )
        elapsed, outcome = transfer_time(env, cluster, start=2e-3)
        assert outcome.ok
        assert elapsed > 0

    def test_degrade_slows_transfer_by_the_factor(self):
        env, cluster = make_cluster()
        clean, _ = transfer_time(env, cluster)

        env, cluster = make_cluster(
            FaultPlan().degrade_link(0, 1, at=0.0, factor=0.25)
        )
        degraded, outcome = transfer_time(env, cluster, start=1e-9)
        assert outcome.ok
        # Only the bandwidth term is scaled; latency/overhead are not.
        assert degraded > clean * 2

    def test_degrade_with_duration_restores_full_bandwidth(self):
        env, cluster = make_cluster()
        clean, _ = transfer_time(env, cluster)
        env, cluster = make_cluster(
            FaultPlan().degrade_link(0, 1, at=0.0, factor=0.25, duration=1e-4)
        )
        after, _ = transfer_time(env, cluster, start=1e-3)
        assert after == pytest.approx(clean)


class TestDelivery:
    def test_sampling_is_seed_deterministic(self):
        def draws(seed):
            env = Environment()
            inj = FaultInjector(
                env, FaultPlan(seed=seed).message_loss(0.3)
                .message_corruption(0.3)
            )
            return [inj.sample_delivery(0, 1, 1024) for _ in range(200)]

        a, b = draws(9), draws(9)
        assert a == b
        assert set(a) == {DELIVERED, LOST, CORRUPTED}
        assert draws(10) != a  # another seed gives another sequence

    def test_lossy_transfer_spends_wire_time_but_reports_undelivered(self):
        env, cluster = make_cluster(FaultPlan(seed=1).message_loss(0.999))
        elapsed, outcome = transfer_time(env, cluster)
        assert not outcome.delivered
        assert outcome.reason == "message lost"
        assert elapsed > 0  # the wire time was spent

    def test_corrupted_transfer_is_delivered_but_flagged(self):
        env, cluster = make_cluster(
            FaultPlan(seed=1).message_corruption(0.999)
        )
        _, outcome = transfer_time(env, cluster)
        assert outcome.delivered and outcome.corrupted and not outcome.ok

    def test_log_and_subscribe(self):
        env, cluster = make_cluster(FaultPlan().crash_node(1, at=1e-3))
        seen = []
        cluster.faults.subscribe(
            lambda t, kind, detail, node: seen.append((t, kind, node))
        )
        env.run()
        assert (1e-3, "node_crash", 1) in seen
        assert any(kind == "node_crash" for _, kind, _ in cluster.faults.log)
