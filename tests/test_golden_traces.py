"""Golden-trace determinism: the fast path must not move a single timestamp.

Each scenario runs twice from scratch (fresh Environment, fresh glue) and must
produce byte-identical probe traces; the digest must also match the canonical
one committed in ``tests/golden/golden_traces.json``, so any change to
virtual-time behaviour — intentional or not — fails loudly here.
"""

import os

import pytest

from .golden_traces import (
    SCENARIOS,
    canonical_times,
    capture,
    digest_of,
    load_golden,
    regenerate,
    run_scenario,
)

if os.environ.get("REPRO_REGEN_GOLDEN"):
    regenerate()

GOLDEN = load_golden()


@pytest.fixture(scope="module")
def first_runs():
    """One capture per scenario, shared by the repeatability and golden tests."""
    return {name: capture(name) for name in SCENARIOS}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_rerun_is_byte_identical(name, first_runs):
    """Same seed, fresh world: the probe trace must not drift run-to-run."""
    again = run_scenario(name)
    assert digest_of(again) == first_runs[name]["trace_sha256"]
    assert canonical_times(again) == first_runs[name]["times"]


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_matches_committed_golden(name, first_runs):
    """The run must match the canonical digest committed in the repo."""
    assert name in GOLDEN, (
        f"scenario {name} has no committed golden trace; run "
        f"REPRO_REGEN_GOLDEN=1 pytest tests/test_golden_traces.py"
    )
    got = first_runs[name]
    want = GOLDEN[name]
    assert got["trace_events"] == want["trace_events"]
    assert got["times"] == want["times"], (
        f"virtual times of {name} changed — the fast path altered simulated "
        f"behaviour"
    )
    assert got["trace_sha256"] == want["trace_sha256"], (
        f"probe trace of {name} changed — the fast path altered event "
        f"content or ordering"
    )


def test_armed_and_clean_scenarios_present():
    """The suite must pin both fault-armed and unarmed behaviour."""
    armed = [n for n, s in SCENARIOS.items() if s[4](s[2]) is not None]
    clean = [n for n, s in SCENARIOS.items() if s[4](s[2]) is None]
    assert armed and clean
