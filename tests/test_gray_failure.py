"""Gray-failure resilience: RTT-probe straggler detection, adaptive
timeouts under lossy fabrics, and the runtime's drain/restore migration."""

import math

import pytest

from repro.apps import benchmark_mapping, fft2d_slack_model
from repro.core.codegen import generate_glue
from repro.core.runtime import DEFAULT_CONFIG, SageRuntime
from repro.faults import FaultPlan, FaultPolicy
from repro.machine import Environment, SimCluster, get_platform
from repro.mpi.adaptive import RttEstimator
from repro.mpi.detector import FailureDetector, HeartbeatConfig

PERIOD = 1e-4


def _detector(nodes=4, plan=None, **cfg):
    env = Environment()
    cluster = SimCluster.from_platform(env, get_platform("cspi"), nodes,
                                       fault_plan=plan)
    detector = FailureDetector(cluster, HeartbeatConfig(period=PERIOD, **cfg))
    return env, detector.start()


# -- the estimator's peak watermark ------------------------------------------

def test_estimator_peak_tracks_and_decays():
    est = RttEstimator()
    for _ in range(10):
        est.observe(1.0)
    est.observe(5.0)                      # one big spike
    assert est.peak == 5.0
    for _ in range(300):
        est.observe(1.0)
    assert est.peak < 1.5                 # decayed back toward the mean
    assert est.peak >= est.mean


def test_estimator_peak_decay_scales():
    slow = RttEstimator(peak_decay=RttEstimator.PEAK_DECAY / 10)
    fast = RttEstimator()
    for est in (slow, fast):
        est.observe(1.0)
        est.observe(5.0)
        for _ in range(50):
            est.observe(1.0)
    assert slow.peak > fast.peak


def test_estimator_validates_peak_decay():
    with pytest.raises(ValueError):
        RttEstimator(peak_decay=0.0)
    with pytest.raises(ValueError):
        RttEstimator(peak_decay=1.5)


# -- slow-node suspicion via RTT probes --------------------------------------

def test_slow_node_raises_and_clears_suspect_slow():
    plan = FaultPlan(seed=3).slow_node(2, at=20 * PERIOD, factor=0.2,
                                       duration=60 * PERIOD)
    env, det = _detector(plan=plan, adaptive=True, rtt_probe_every=4)
    env.run(until=60 * PERIOD)            # mid-limp: suspicion is standing
    assert det.first_slow(2) is not None
    env.run(until=200 * PERIOD)
    det.stop()
    kinds = [(e.kind, e.target) for e in det.log]
    assert ("suspect_slow", 2) in kinds
    assert ("clear_slow", 2) in kinds
    suspected = next(e.time for e in det.log if e.kind == "suspect_slow")
    assert suspected > 20 * PERIOD
    # A limping node is alive: liveness detection must not fire at all.
    assert all(e.kind != "declare_dead" for e in det.log)
    # clear_slow retires the standing suspicion entirely.
    assert det.first_slow(2) is None


def test_sub_threshold_limp_stays_invisible():
    # slow_factor=3.0: a 2x stretch is within normal variance by design.
    plan = FaultPlan(seed=3).slow_node(2, at=20 * PERIOD, factor=0.5)
    env, det = _detector(plan=plan, adaptive=True, rtt_probe_every=4)
    env.run(until=200 * PERIOD)
    det.stop()
    assert all(e.kind not in ("suspect_slow", "declare_dead")
               for e in det.log)


# -- adaptive grace under a lossy fabric -------------------------------------

def _false_declares(adaptive, seed=82, nodes=4, loss=0.15, periods=600):
    plan = FaultPlan(seed=seed).message_loss(loss)
    env, det = _detector(nodes=nodes, plan=plan, adaptive=adaptive)
    env.run(until=periods * PERIOD)
    det.stop()
    # Nothing ever dies here: every declaration is a false positive.
    return sum(1 for e in det.log if e.kind == "declare_dead")


def test_fixed_grace_false_positives_under_loss():
    assert _false_declares(adaptive=False) > 0


def test_adaptive_grace_suppresses_false_positives():
    assert _false_declares(adaptive=True) == 0


def test_adaptive_still_declares_a_real_crash():
    plan = (FaultPlan(seed=5).message_loss(0.10)
            .crash_node(2, at=100 * PERIOD, permanent=True))
    env, det = _detector(plan=plan, adaptive=True)
    env.run(until=600 * PERIOD)
    det.stop()
    first = det.first_detection(2)
    assert first is not None
    declared_at, _observer = first
    latency = declared_at - 100 * PERIOD
    # Bounded by the adaptive ceiling plus the suspicion threshold.
    cfg = det.config
    assert latency <= (cfg.max_grace_periods + cfg.threshold + 1) * PERIOD
    # Only the dead node is declared — the lossy fabric alone never is.
    assert {e.target for e in det.log if e.kind == "declare_dead"} == {2}


# -- the runtime's drain/restore migration -----------------------------------

@pytest.fixture(scope="module")
def straggler_run():
    nodes = 4
    model = fft2d_slack_model(28, 14)
    glue = generate_glue(model, benchmark_mapping(model, nodes),
                         num_processors=nodes)
    # Node 2 carries the light half of the stripe (its clean busy time is
    # ~0.6x the median), so the 4x limp must persist across two full
    # iteration boundaries before the 2x-median strike count reaches
    # straggler_patience; 9ms covers that with room to restore after.
    plan = FaultPlan(seed=9).slow_node(2, at=5e-4, factor=0.25,
                                       duration=9e-3)
    env = Environment()
    cluster = SimCluster.from_platform(env, get_platform("cspi"), nodes,
                                       fault_plan=plan)
    runtime = SageRuntime(glue, cluster, config=DEFAULT_CONFIG.timing_only(),
                          fault_policy=FaultPolicy.migrate_stragglers())
    result = runtime.run(iterations=12)
    return result


def test_migration_drains_and_restores(straggler_run):
    moves = straggler_run.trace.by_kind("migrate_straggler")
    assert len(moves) >= 2
    details = [m.detail for m in moves]
    assert any(d.startswith("drained") for d in details)
    assert any(d.startswith("restored") for d in details)
    assert straggler_run.trace.by_kind("suspect_slow")
    # Proactive migration, not fail-over: nobody is declared dead.
    assert not straggler_run.trace.by_kind("declare_dead")


def test_migration_completes_all_iterations(straggler_run):
    assert straggler_run.iterations == 12
    assert len(straggler_run.sink_times) == 12
    assert all(b > a for a, b in zip(straggler_run.sink_times,
                                     straggler_run.sink_times[1:]))
    assert math.isfinite(straggler_run.makespan)


def test_migration_beats_no_migration():
    nodes = 4
    model = fft2d_slack_model(28, 14)
    glue = generate_glue(model, benchmark_mapping(model, nodes),
                         num_processors=nodes)

    def run(policy, plan):
        env = Environment()
        cluster = SimCluster.from_platform(env, get_platform("cspi"), nodes,
                                           fault_plan=plan)
        return SageRuntime(glue, cluster,
                           config=DEFAULT_CONFIG.timing_only(),
                           fault_policy=policy).run(iterations=10)

    def limp():
        return FaultPlan(seed=9).slow_node(2, at=5e-4, factor=0.25)

    unassisted = run(FaultPolicy.checkpoint_restart(), limp())
    migrated = run(FaultPolicy.migrate_stragglers(), limp())
    assert migrated.makespan < unassisted.makespan


def test_bench_straggler_pause_stat():
    from repro.perf.bench import run_straggler_pause
    from repro.perf.registry import PerfRegistry

    registry = PerfRegistry()
    out = run_straggler_pause(registry)
    assert out is not None
    assert out["drains"] >= 1
    assert out["pause_s"] > 0
    timers = registry.snapshot()["timers"]
    assert "runtime.straggler_pause_s" in timers
