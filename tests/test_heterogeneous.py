"""Heterogeneous-machine tests: per-node CPU specs through the cluster, the
run-time, and AToT's mapping objectives (§1.1: AToT 'assigns the application
tasks to the multi-processor, heterogeneous architecture')."""

import pytest

from repro.apps import benchmark_mapping, corner_turn_model, fft2d_model
from repro.core.atot import GaConfig, MappingObjective, optimize_mapping
from repro.core.codegen import generate_glue
from repro.core.model import round_robin_mapping
from repro.core.runtime import DEFAULT_CONFIG, SageRuntime
from repro.machine import CpuSpec, Environment, SimCluster, cspi


FAST_CPU = CpuSpec(name="fast", clock_mhz=400, mflops=180, copy_bw=360e6)
SLOW_CPU = CpuSpec(name="slow", clock_mhz=100, mflops=45, copy_bw=90e6)


def mixed_cluster(env, nodes=4):
    specs = [FAST_CPU if i % 2 == 0 else SLOW_CPU for i in range(nodes)]
    return SimCluster(
        env=env,
        cpu=specs,
        fabric_spec=cspi().fabric,
        nodes=nodes,
        board_map=cspi().board_map(nodes),
        name="mixed",
    )


class TestHeterogeneousCluster:
    def test_per_node_specs(self):
        cluster = mixed_cluster(Environment())
        assert cluster.is_heterogeneous
        assert cluster.node(0).spec is FAST_CPU
        assert cluster.node(1).spec is SLOW_CPU

    def test_homogeneous_flag(self):
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), 4)
        assert not cluster.is_heterogeneous

    def test_spec_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="CPU specs"):
            SimCluster(
                env=Environment(),
                cpu=[FAST_CPU, SLOW_CPU],
                fabric_spec=cspi().fabric,
                nodes=4,
            )

    def test_slow_node_takes_longer(self):
        env = Environment()
        cluster = mixed_cluster(env)
        ends = {}

        def work(idx):
            yield from cluster.node(idx).compute(90e6)
            ends[idx] = env.now

        env.process(work(0))
        env.process(work(1))
        env.run()
        assert ends[1] > ends[0] * 3  # 45 vs 180 MFLOPS


class TestHeterogeneousRuntime:
    def test_fft_latency_dominated_by_slow_nodes(self):
        """The same glue on a mixed machine is slower than on all-fast."""
        n, nodes = 256, 4
        app = fft2d_model(n, nodes)
        glue = generate_glue(app, benchmark_mapping(app, nodes), num_processors=nodes)

        def run(specs):
            env = Environment()
            cluster = SimCluster(
                env=env, cpu=specs, fabric_spec=cspi().fabric, nodes=nodes,
                board_map=cspi().board_map(nodes),
            )
            runtime = SageRuntime(glue, cluster, config=DEFAULT_CONFIG.timing_only())
            return runtime.run(iterations=2).mean_latency

        all_fast = run([FAST_CPU] * nodes)
        mixed = run([FAST_CPU, FAST_CPU, SLOW_CPU, SLOW_CPU])
        all_slow = run([SLOW_CPU] * nodes)
        assert all_fast < mixed <= all_slow
        # The corner turn synchronises every stage, so with equal-sized
        # stripes the slow nodes set the pace entirely: the mixed machine
        # performs like the all-slow one (the load-balancing motivation for
        # AToT's speed-aware objective).
        assert mixed == pytest.approx(all_slow, rel=1e-6)


class TestHeterogeneousObjectives:
    def test_loads_measured_in_seconds(self):
        app = fft2d_model(256, 4)
        specs = [FAST_CPU, FAST_CPU, SLOW_CPU, SLOW_CPU]
        obj = MappingObjective(app, cspi(), 4, cpu_specs=specs)
        bd = obj.breakdown(round_robin_mapping(app, 4))
        # Equal flops per node but unequal speeds: imbalance > 1.
        assert bd.load_imbalance > 1.5

    def test_homogeneous_specs_equivalent_to_default(self):
        app = fft2d_model(256, 4)
        obj_a = MappingObjective(app, cspi(), 4)
        obj_b = MappingObjective(app, cspi(), 4, cpu_specs=[cspi().cpu] * 4)
        m = round_robin_mapping(app, 4)
        assert obj_a.fitness(m) == pytest.approx(obj_b.fitness(m))

    def test_spec_count_checked(self):
        app = fft2d_model(256, 4)
        with pytest.raises(ValueError):
            MappingObjective(app, cspi(), 4, cpu_specs=[FAST_CPU])

    def test_ga_shifts_load_off_slow_nodes(self):
        """On a 2-fast/2-slow machine, the GA should beat round-robin (which
        ignores node speeds) on the seconds-weighted objective."""
        app = corner_turn_model(256, 4)
        specs = [FAST_CPU, FAST_CPU, SLOW_CPU, SLOW_CPU]
        result = optimize_mapping(
            app, cspi(), 4,
            config=GaConfig(population=40, generations=30, seed=3),
            cpu_specs=specs,
        )
        obj = MappingObjective(app, cspi(), 4, cpu_specs=specs)
        rr = obj.fitness(round_robin_mapping(app, 4))
        assert result.fitness < rr
