"""HTML report + Request.waitall tests."""

import pytest

from repro.apps import benchmark_mapping, fft2d_model
from repro.core.codegen import generate_glue
from repro.core.runtime import DEFAULT_CONFIG, SageRuntime
from repro.core.visualizer import render_html_report
from repro.machine import Environment, SimCluster, cspi
from repro.mpi import MpiWorld, Request


@pytest.fixture(scope="module")
def run_result():
    nodes = 4
    app = fft2d_model(64, nodes)
    glue = generate_glue(app, benchmark_mapping(app, nodes), num_processors=nodes)
    env = Environment()
    cluster = SimCluster.from_platform(env, cspi(), nodes)
    runtime = SageRuntime(glue, cluster, config=DEFAULT_CONFIG.timing_only())
    return runtime.run(iterations=2)


class TestHtmlReport:
    def test_standalone_document(self, run_result):
        doc = render_html_report(run_result, processors=4)
        assert doc.startswith("<!DOCTYPE html>")
        assert doc.endswith("</html>")
        assert "<svg" in doc and "</svg>" in doc
        assert "http" not in doc  # no external assets

    def test_one_lane_per_processor(self, run_result):
        doc = render_html_report(run_result, processors=4)
        for p in range(4):
            assert f">P{p}</text>" in doc

    def test_bars_for_every_span_with_tooltips(self, run_result):
        doc = render_html_report(run_result, processors=4)
        spans = run_result.trace.spans()
        assert doc.count("<rect") == len(spans)
        # one tooltip per bar, plus the document <title>
        assert doc.count("<title>") == len(spans) + 1
        assert "rowfft" in doc

    def test_stats_present(self, run_result):
        doc = render_html_report(run_result, processors=4)
        assert "mean latency" in doc
        assert "Processor utilization" in doc
        assert "Function busy time" in doc

    def test_escapes_title(self, run_result):
        doc = render_html_report(run_result, processors=4, title="<script>x</script>")
        assert "<script>x</script>" not in doc
        assert "&lt;script&gt;" in doc


class TestWaitall:
    def test_waitall_collects_values(self):
        env = Environment()
        world = MpiWorld(SimCluster.from_platform(env, cspi(), 2))

        def sender(comm):
            reqs = [comm.isend(i, dest=1, tag=i) for i in range(5)]
            yield from Request.waitall(reqs)
            return "sent"

        def receiver(comm):
            got = []
            for i in range(5):
                got.append((yield from comm.recv(source=0, tag=i)))
            return got

        world.spawn_rank(0, sender)
        p = world.spawn_rank(1, receiver)
        world.env.run(until=p)
        assert p.value == [0, 1, 2, 3, 4]

    def test_waitall_empty(self):
        env = Environment()
        world = MpiWorld(SimCluster.from_platform(env, cspi(), 1))

        def prog(comm):
            values = yield from Request.waitall([])
            return values

        world.spawn(prog)
        assert world.run() == [[]]


class TestFaultMarkers:
    @pytest.fixture(scope="class")
    def shrink_result(self):
        from repro.faults import FaultPlan, FaultPolicy

        nodes = 8
        app = fft2d_model(32, nodes)
        glue = generate_glue(app, benchmark_mapping(app, nodes),
                             num_processors=nodes)
        env = Environment()
        plan = FaultPlan(seed=5).crash_node(3, at=0.0006, permanent=True)
        cluster = SimCluster.from_platform(env, cspi(), nodes,
                                           fault_plan=plan)
        runtime = SageRuntime(glue, cluster,
                              config=DEFAULT_CONFIG.timing_only(),
                              fault_policy=FaultPolicy.shrink_restripe())
        return runtime.run(iterations=3)

    def test_fault_event_markers_and_table(self, shrink_result):
        doc = render_html_report(shrink_result, processors=8)
        for kind in ("fault_injected", "suspect", "declare_dead",
                     "checkpoint", "shrink", "restripe", "restore"):
            assert kind in doc, kind
        assert "Fault-tolerance events" in doc
        assert "stroke-dasharray" in doc  # the vertical markers

    def test_fault_free_report_has_no_marker_table(self, run_result):
        doc = render_html_report(run_result, processors=4)
        assert "Fault-tolerance events" not in doc
