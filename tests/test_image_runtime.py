"""End-to-end distributed image-filtering tests (ifft + spectrum kernels)."""

import numpy as np
import pytest

from repro.apps import benchmark_mapping
from repro.core.codegen import generate_glue
from repro.core.model import ApplicationModel, DataType, FunctionBlock, striped
from repro.core.runtime import KernelError, SageRuntime
from repro.core.runtime.kernels import ThreadContext, _build_filter_kernel, default_bindings
from repro.kernels import conv2d_fft
from repro.machine import Environment, SimCluster, cspi

N = 32


def filter_model(nodes, **filter_params):
    t = DataType("img", "complex64", (N, N))
    app = ApplicationModel("imgfilter")

    def block(name, kernel, in_stripe, out_stripe, **params):
        b = app.add_block(FunctionBlock(name, kernel=kernel, threads=nodes, params=params))
        if in_stripe is not None:
            b.add_in("in", t, in_stripe)
        b.add_out("out", t, out_stripe)
        return b

    block("src", "matrix_source", None, striped(0))
    block("rowfft", "fft_rows", striped(0), striped(0))
    block("colfft", "fft_cols", striped(1), striped(1))
    block("filter", "spectrum_multiply", striped(1), striped(1),
          shape=[N, N], **filter_params)
    block("icolfft", "ifft_cols", striped(1), striped(1))
    block("irowfft", "ifft_rows", striped(0), striped(0))
    sink = app.add_block(FunctionBlock("sink", kernel="matrix_sink", threads=nodes))
    sink.add_in("in", t, striped(0))
    for a, b in (("src", "rowfft"), ("rowfft", "colfft"), ("colfft", "filter"),
                 ("filter", "icolfft"), ("icolfft", "irowfft"), ("irowfft", "sink")):
        app.connect(app.children[a].port("out"), app.children[b].port("in"))
    return app


def run_filter(nodes, image, **filter_params):
    app = filter_model(nodes, **filter_params)
    glue = generate_glue(app, benchmark_mapping(app, nodes), num_processors=nodes)
    env = Environment()
    cluster = SimCluster.from_platform(env, cspi(), nodes)
    runtime = SageRuntime(glue, cluster)
    return runtime.run(iterations=1, input_provider=lambda k: image).full_result(0)


@pytest.mark.parametrize("nodes", [1, 2, 4])
@pytest.mark.parametrize("kind,params", [
    ("gaussian", {"filter": "gaussian", "size": 5, "sigma": 1.0}),
    ("box", {"filter": "box", "size": 3}),
])
def test_distributed_filter_matches_single_node(nodes, kind, params):
    rng = np.random.default_rng(3)
    image = (rng.standard_normal((N, N)) + 1j * rng.standard_normal((N, N))).astype(
        np.complex64
    )
    got = run_filter(nodes, image, **params)
    kern = _build_filter_kernel(params["filter"], params["size"], params.get("sigma", 1.0))
    expected = conv2d_fft(np.asarray(image, dtype=complex), kern)
    np.testing.assert_allclose(got, expected, atol=1e-3)


def test_roundtrip_without_filter_is_identity():
    """fft -> (unit filter) -> ifft returns the input image."""
    rng = np.random.default_rng(4)
    image = rng.standard_normal((N, N)).astype(np.complex64)
    got = run_filter(2, image, filter="box", size=1)  # 1x1 box = identity
    np.testing.assert_allclose(got, image, atol=1e-3)


def test_unknown_filter_kind_raises():
    with pytest.raises(KernelError, match="unknown filter"):
        _build_filter_kernel("median", 3, 1.0)


def test_spectrum_multiply_requires_shape_param():
    binding = default_bindings()["spectrum_multiply"]
    from repro.core.runtime.striping import thread_region
    from repro.core.model import striped as striped_

    region = thread_region((8, 8), striped_(1), 1, 0)
    ctx = ThreadContext(
        function_id=0, name="f", kernel="spectrum_multiply", thread=0, threads=1,
        iteration=0, params={},  # missing 'shape'
        in_regions={"in": region}, out_regions={"out": region},
        out_dtypes={"out": "complex64"},
    )
    with pytest.raises(KernelError, match="shape"):
        binding.run(ctx, {"in": np.zeros((8, 8), dtype=complex)})


def test_gaussian_kernel_normalised():
    k = _build_filter_kernel("gaussian", 7, 1.5)
    assert k.sum() == pytest.approx(1.0)
    assert k[3, 3] == k.max()
