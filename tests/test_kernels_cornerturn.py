"""Corner-turn kernel tests: blocked transpose and distributed tile algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    assemble_received_tiles,
    extract_send_tiles,
    local_transpose,
    row_block_bounds,
    split_row_block,
)


class TestLocalTranspose:
    @pytest.mark.parametrize("shape", [(1, 1), (4, 4), (64, 64), (65, 3), (7, 130)])
    def test_matches_numpy(self, shape):
        rng = np.random.default_rng(0)
        x = rng.normal(size=shape)
        np.testing.assert_array_equal(local_transpose(x), x.T)

    @pytest.mark.parametrize("block", [1, 2, 16, 1000])
    def test_block_size_irrelevant_to_result(self, block):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(33, 17))
        np.testing.assert_array_equal(local_transpose(x, block=block), x.T)

    def test_returns_new_contiguous_array(self):
        x = np.arange(12).reshape(3, 4)
        t = local_transpose(x)
        assert t.flags["C_CONTIGUOUS"]
        x[0, 0] = 99
        assert t[0, 0] == 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            local_transpose(np.zeros(4))
        with pytest.raises(ValueError):
            local_transpose(np.zeros((2, 2)), block=0)


class TestRowBlockBounds:
    def test_even_division(self):
        assert row_block_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_spread_over_leading_blocks(self):
        assert row_block_bounds(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_more_parts_than_rows(self):
        bounds = row_block_bounds(2, 4)
        sizes = [b - a for a, b in bounds]
        assert sizes == [1, 1, 0, 0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            row_block_bounds(4, 0)
        with pytest.raises(ValueError):
            row_block_bounds(-1, 2)

    @given(st.integers(0, 200), st.integers(1, 16))
    @settings(max_examples=100, deadline=None)
    def test_partition_properties(self, n, parts):
        bounds = row_block_bounds(n, parts)
        assert len(bounds) == parts
        # contiguous cover of [0, n)
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        for (_a1, b1), (a2, _) in zip(bounds, bounds[1:]):
            assert b1 == a2
        # balanced: sizes differ by at most one
        sizes = [b - a for a, b in bounds]
        assert max(sizes) - min(sizes) <= 1


class TestDistributedTileAlgebra:
    @pytest.mark.parametrize("n,p", [(8, 2), (8, 4), (16, 4), (12, 3), (10, 4)])
    def test_tiles_reassemble_to_global_transpose(self, n, p):
        """The full distributed corner-turn data path, done locally:
        split -> extract tiles -> 'exchange' -> assemble == global transpose."""
        rng = np.random.default_rng(n * p)
        x = rng.normal(size=(n, n))
        blocks = split_row_block(x, p)
        tiles = [extract_send_tiles(blk, p) for blk in blocks]  # tiles[s][d]
        col_bounds = row_block_bounds(n, p)
        for d in range(p):
            received = [tiles[s][d] for s in range(p)]
            my_rows = assemble_received_tiles(received, n)
            a, b = col_bounds[d]
            np.testing.assert_array_equal(my_rows, x.T[a:b])

    def test_split_returns_views(self):
        x = np.zeros((8, 8))
        blocks = split_row_block(x, 4)
        blocks[0][0, 0] = 7.0
        assert x[0, 0] == 7.0

    def test_extract_tiles_are_copies(self):
        x = np.zeros((4, 8))
        tiles = extract_send_tiles(x, 2)
        tiles[0][0, 0] = 5.0
        assert x[0, 0] == 0.0

    def test_assemble_checks_width(self):
        with pytest.raises(ValueError):
            assemble_received_tiles([np.zeros((2, 3))], n_cols_total=4)

    def test_assemble_empty_raises(self):
        with pytest.raises(ValueError):
            assemble_received_tiles([], n_cols_total=0)

    @given(
        st.integers(1, 6).map(lambda k: 2**k),
        st.sampled_from([1, 2, 4, 8]),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_corner_turn_roundtrip_property(self, n, p, seed):
        """Corner-turning twice restores the original distribution."""
        if p > n:
            p = n
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, n))

        def distributed_turn(mat):
            blocks = split_row_block(mat, p)
            tiles = [extract_send_tiles(blk, p) for blk in blocks]
            return np.vstack(
                [assemble_received_tiles([tiles[s][d] for s in range(p)], n) for d in range(p)]
            )

        np.testing.assert_array_equal(distributed_turn(distributed_turn(x)), x)
