"""FFT kernel tests: our radix-2 implementation vs numpy, plus property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    bit_reverse_permutation,
    fft,
    fft2d,
    fft_rows,
    ifft,
    ifft2d,
    ifft_rows,
)


class TestBitReverse:
    def test_n8(self):
        assert list(bit_reverse_permutation(8)) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_n1(self):
        assert list(bit_reverse_permutation(1)) == [0]

    def test_is_involution(self):
        perm = bit_reverse_permutation(64)
        assert np.array_equal(perm[perm], np.arange(64))

    @pytest.mark.parametrize("bad", [0, 3, 12, -8])
    def test_rejects_non_power_of_two(self, bad):
        with pytest.raises(ValueError):
            bit_reverse_permutation(bad)


class TestFft1d:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 64, 256, 1024])
    def test_matches_numpy(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-9)

    def test_real_input(self):
        x = np.arange(16, dtype=float)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-10)

    def test_impulse_gives_flat_spectrum(self):
        x = np.zeros(32)
        x[0] = 1.0
        np.testing.assert_allclose(fft(x), np.ones(32), atol=1e-12)

    def test_constant_gives_dc_only(self):
        x = np.ones(16)
        expected = np.zeros(16, dtype=complex)
        expected[0] = 16
        np.testing.assert_allclose(fft(x), expected, atol=1e-12)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fft(np.zeros(12))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            fft(np.zeros((4, 4)))

    @given(
        st.integers(min_value=1, max_value=7).map(lambda k: 2**k),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        np.testing.assert_allclose(ifft(fft(x)), x, atol=1e-9)

    @given(
        st.integers(min_value=1, max_value=6).map(lambda k: 2**k),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_linearity_property(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        y = rng.normal(size=n) + 1j * rng.normal(size=n)
        np.testing.assert_allclose(fft(x + y), fft(x) + fft(y), atol=1e-9)

    @given(
        st.integers(min_value=2, max_value=7).map(lambda k: 2**k),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_parseval_property(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        energy_time = np.sum(np.abs(x) ** 2)
        energy_freq = np.sum(np.abs(fft(x)) ** 2) / n
        assert energy_time == pytest.approx(energy_freq)


class TestFftRows:
    @pytest.mark.parametrize("shape", [(1, 8), (4, 16), (16, 4), (7, 32)])
    def test_matches_numpy(self, shape):
        rng = np.random.default_rng(0)
        x = rng.normal(size=shape) + 1j * rng.normal(size=shape)
        np.testing.assert_allclose(fft_rows(x), np.fft.fft(x, axis=1), atol=1e-9)

    def test_numpy_backend_agrees_with_own(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(8, 64)) + 1j * rng.normal(size=(8, 64))
        np.testing.assert_allclose(
            fft_rows(x, backend="own"), fft_rows(x, backend="numpy"), atol=1e-9
        )

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            fft_rows(np.zeros((2, 4)), backend="fftw")

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            fft_rows(np.zeros(8))

    def test_ifft_rows_inverts(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(5, 32)) + 1j * rng.normal(size=(5, 32))
        np.testing.assert_allclose(ifft_rows(fft_rows(x)), x, atol=1e-9)


class TestFft2d:
    @pytest.mark.parametrize("n", [2, 8, 32, 128])
    def test_matches_numpy_fft2(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))
        np.testing.assert_allclose(fft2d(x), np.fft.fft2(x), atol=1e-8)

    def test_rectangular(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(16, 64))
        np.testing.assert_allclose(fft2d(x), np.fft.fft2(x), atol=1e-9)

    def test_roundtrip(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(32, 32)) + 1j * rng.normal(size=(32, 32))
        np.testing.assert_allclose(ifft2d(fft2d(x)), x, atol=1e-9)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            fft2d(np.zeros(8))

    def test_separability_matches_composition(self):
        # fft2d must equal "rows then columns" done explicitly.
        rng = np.random.default_rng(5)
        x = rng.normal(size=(16, 16)) + 1j * rng.normal(size=(16, 16))
        manual = fft_rows(fft_rows(x).T).T
        np.testing.assert_allclose(fft2d(x), manual, atol=1e-9)
