"""Image-kernel tests, validated against scipy/direct references."""

import numpy as np
import pytest

from repro.kernels import (
    box_blur,
    conv2d_direct,
    conv2d_fft,
    conv2d_fft_flops,
    sobel_magnitude,
    threshold_segment,
)


def circular_reference(image, kernel):
    """scipy-based circular convolution reference."""
    h, w = image.shape
    padded = np.zeros_like(image, dtype=float)
    padded[: kernel.shape[0], : kernel.shape[1]] = kernel
    return np.real(np.fft.ifft2(np.fft.fft2(image) * np.fft.fft2(padded)))


class TestConv2d:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.image = rng.normal(size=(16, 16))
        self.kernel = rng.normal(size=(3, 3))

    def test_direct_matches_fft_reference(self):
        np.testing.assert_allclose(
            conv2d_direct(self.image, self.kernel),
            circular_reference(self.image, self.kernel),
            atol=1e-10,
        )

    def test_fft_matches_direct(self):
        np.testing.assert_allclose(
            conv2d_fft(self.image, self.kernel),
            conv2d_direct(self.image, self.kernel),
            atol=1e-8,
        )

    def test_identity_kernel(self):
        ident = np.zeros((3, 3))
        ident[0, 0] = 1.0
        np.testing.assert_allclose(conv2d_direct(self.image, ident), self.image)

    def test_real_input_gives_real_output(self):
        out = conv2d_fft(self.image, self.kernel)
        assert not np.iscomplexobj(out)

    def test_complex_input_stays_complex(self):
        out = conv2d_fft(self.image.astype(complex), self.kernel)
        assert np.iscomplexobj(out)

    def test_kernel_too_large(self):
        with pytest.raises(ValueError):
            conv2d_direct(np.ones((4, 4)), np.ones((5, 5)))
        with pytest.raises(ValueError):
            conv2d_fft(np.ones((4, 4)), np.ones((5, 5)))

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            conv2d_direct(np.ones(4), np.ones((2, 2)))

    def test_flops_model(self):
        assert conv2d_fft_flops(64) > 0
        with pytest.raises(ValueError):
            conv2d_fft_flops(100)


class TestSobel:
    def test_flat_image_zero_gradient(self):
        np.testing.assert_allclose(sobel_magnitude(np.full((8, 8), 5.0)), 0.0, atol=1e-12)

    def test_vertical_edge_detected(self):
        image = np.zeros((16, 16))
        image[:, 8:] = 1.0
        mag = sobel_magnitude(image)
        # strongest response at the edge columns
        edge_mean = mag[:, 7:9].mean()
        flat_mean = mag[:, 2:6].mean()
        assert edge_mean > 10 * max(flat_mean, 1e-12)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            sobel_magnitude(np.ones(8))


class TestBoxBlur:
    def test_preserves_mean(self):
        rng = np.random.default_rng(1)
        image = rng.normal(size=(16, 16))
        out = box_blur(image, size=3)
        assert out.mean() == pytest.approx(image.mean())

    def test_reduces_variance(self):
        rng = np.random.default_rng(2)
        image = rng.normal(size=(32, 32))
        assert box_blur(image, 5).var() < image.var()

    def test_size_validation(self):
        with pytest.raises(ValueError):
            box_blur(np.ones((4, 4)), size=2)
        with pytest.raises(ValueError):
            box_blur(np.ones((4, 4)), size=-1)


class TestThresholdSegment:
    def test_top_decile_selected(self):
        image = np.arange(100, dtype=float).reshape(10, 10)
        mask = threshold_segment(image, quantile=0.9)
        assert mask.sum() == 10  # strictly above the 90th percentile

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            threshold_segment(np.ones((2, 2)), quantile=1.5)
