"""Radar and linear-algebra kernel tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    cfar_detect,
    cfar_threshold,
    chirp_waveform,
    cholesky_flops,
    doppler_process,
    hanning_window,
    matmul,
    matmul_blocked,
    matvec,
    outer,
    pulse_compress,
    pulse_compress_rows,
)


class TestLinalg:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.a = rng.normal(size=(12, 8))
        self.b = rng.normal(size=(8, 10))

    def test_matmul_matches_numpy(self):
        np.testing.assert_allclose(matmul(self.a, self.b), self.a @ self.b)

    @pytest.mark.parametrize("block", [1, 3, 8, 64])
    def test_blocked_matmul_matches(self, block):
        np.testing.assert_allclose(
            matmul_blocked(self.a, self.b, block=block), self.a @ self.b, atol=1e-12
        )

    def test_complex_blocked(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(6, 6)) + 1j * rng.normal(size=(6, 6))
        b = rng.normal(size=(6, 6)) + 1j * rng.normal(size=(6, 6))
        np.testing.assert_allclose(matmul_blocked(a, b, block=2), a @ b, atol=1e-12)

    def test_shape_errors(self):
        with pytest.raises(ValueError):
            matmul(self.a, self.a)
        with pytest.raises(ValueError):
            matmul_blocked(self.a, self.b, block=0)
        with pytest.raises(ValueError):
            matvec(self.a, np.ones(3))
        with pytest.raises(ValueError):
            outer(self.a, np.ones(3))

    def test_matvec(self):
        x = np.arange(8, dtype=float)
        np.testing.assert_allclose(matvec(self.a, x), self.a @ x)

    def test_outer_conjugates_second(self):
        x = np.array([1 + 1j, 2j])
        y = np.array([1j, 1.0])
        np.testing.assert_allclose(outer(x, y), np.outer(x, np.conj(y)))

    def test_cholesky_flops(self):
        assert cholesky_flops(10) == pytest.approx(1000 / 3)
        with pytest.raises(ValueError):
            cholesky_flops(0)


class TestChirp:
    def test_unit_amplitude(self):
        w = chirp_waveform(64)
        np.testing.assert_allclose(np.abs(w), 1.0)

    def test_bandwidth_validation(self):
        with pytest.raises(ValueError):
            chirp_waveform(64, bandwidth_frac=0)
        with pytest.raises(ValueError):
            chirp_waveform(0)


class TestPulseCompression:
    def test_matched_filter_peaks_at_target_delay(self):
        n, delay = 256, 40
        wf = chirp_waveform(n)
        echo = np.roll(wf, delay)  # circular model: target at `delay`
        compressed = pulse_compress(echo, wf)
        assert int(np.argmax(np.abs(compressed))) == delay

    def test_peak_gain_is_pulse_length(self):
        n = 128
        wf = chirp_waveform(n)
        compressed = pulse_compress(wf, wf)
        assert np.abs(compressed[0]) == pytest.approx(n, rel=1e-6)

    def test_rows_version_matches_loop(self):
        n = 64
        wf = chirp_waveform(n)
        rng = np.random.default_rng(2)
        echoes = rng.normal(size=(5, n)) + 1j * rng.normal(size=(5, n))
        rows = pulse_compress_rows(echoes, wf)
        for i in range(5):
            np.testing.assert_allclose(rows[i], pulse_compress(echoes[i], wf), atol=1e-8)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pulse_compress(np.ones(8), np.ones(16))
        with pytest.raises(ValueError):
            pulse_compress_rows(np.ones(8), np.ones(8))

    @given(st.integers(3, 7).map(lambda k: 2**k), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_detects_random_delay_property(self, n, seed):
        rng = np.random.default_rng(seed)
        delay = int(rng.integers(0, n))
        wf = chirp_waveform(n)
        echo = np.roll(wf, delay) + 0.05 * (
            rng.normal(size=n) + 1j * rng.normal(size=n)
        )
        compressed = pulse_compress(echo, wf)
        assert int(np.argmax(np.abs(compressed))) == delay


class TestDoppler:
    def test_constant_target_in_zero_doppler_bin(self):
        pulses, rng_bins = 16, 8
        cpi = np.ones((pulses, rng_bins), dtype=complex)
        out = doppler_process(cpi)
        assert out.shape == (pulses, rng_bins)
        # all energy in doppler bin 0
        assert np.argmax(np.abs(out[:, 0])) == 0
        assert np.abs(out[0, 0]) == pytest.approx(pulses)

    def test_moving_target_lands_in_its_bin(self):
        pulses, rng_bins, bin_idx = 32, 4, 5
        phase = np.exp(2j * np.pi * bin_idx * np.arange(pulses) / pulses)
        cpi = np.tile(phase[:, None], (1, rng_bins))
        out = doppler_process(cpi)
        assert int(np.argmax(np.abs(out[:, 0]))) == bin_idx

    def test_window_applied_along_pulses(self):
        pulses, rng_bins = 16, 4
        cpi = np.ones((pulses, rng_bins), dtype=complex)
        w = hanning_window(pulses)
        out = doppler_process(cpi, window=w)
        assert np.abs(out[0, 0]) == pytest.approx(w.sum())

    def test_window_length_checked(self):
        with pytest.raises(ValueError):
            doppler_process(np.ones((8, 4)), window=np.ones(5))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            doppler_process(np.ones(8))


class TestCfar:
    def test_lone_target_detected(self):
        cells = np.full(64, 1.0, dtype=complex)
        cells[30] = 20.0
        det = cfar_detect(cells, guard=2, train=8, scale=5.0)
        assert det[30]
        assert det.sum() == 1

    def test_uniform_noise_no_detections(self):
        cells = np.full(64, 3.0, dtype=complex)
        det = cfar_detect(cells, scale=5.0)
        assert not det.any()

    def test_guard_cells_protect_spread_targets(self):
        cells = np.full(64, 1.0, dtype=complex)
        cells[30] = 10.0
        cells[31] = 10.0  # energy leaking into the adjacent cell
        det_guarded = cfar_detect(cells, guard=2, train=8, scale=8.0)
        assert det_guarded[30] and det_guarded[31]

    def test_threshold_scales_with_noise(self):
        quiet = cfar_threshold(np.full(32, 1.0))
        loud = cfar_threshold(np.full(32, 4.0))
        np.testing.assert_allclose(loud, 4 * quiet)

    def test_2d_input_rowwise(self):
        power = np.ones((3, 32))
        power[1, 16] = 100.0
        thr = cfar_threshold(power, scale=5.0)
        det = power > thr
        assert det[1, 16]
        assert det.sum() == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            cfar_threshold(np.ones(8), train=0)
        with pytest.raises(ValueError):
            cfar_threshold(np.ones(8), guard=-1)
