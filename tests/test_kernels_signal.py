"""Signal-primitive tests, validated against numpy/scipy references."""

import numpy as np
import pytest
import scipy.signal

from repro.kernels import (
    KERNEL_REGISTRY,
    KernelInfo,
    apply_window,
    blackman_window,
    dot,
    fir_filter,
    get_kernel,
    hamming_window,
    hanning_window,
    magnitude_db,
    register_kernel,
    vadd,
    vmag2,
    vmul,
    vsmul,
)


class TestVectorOps:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.a = rng.normal(size=32) + 1j * rng.normal(size=32)
        self.b = rng.normal(size=32) + 1j * rng.normal(size=32)

    def test_vadd(self):
        np.testing.assert_array_equal(vadd(self.a, self.b), self.a + self.b)

    def test_vmul(self):
        np.testing.assert_array_equal(vmul(self.a, self.b), self.a * self.b)

    def test_vsmul(self):
        np.testing.assert_array_equal(vsmul(self.a, 2j), self.a * 2j)

    def test_vmag2(self):
        np.testing.assert_allclose(vmag2(self.a), np.abs(self.a) ** 2)
        assert vmag2(self.a).dtype == np.float64

    def test_dot_conjugates_first_argument(self):
        expected = np.vdot(self.a, self.b)
        assert dot(self.a, self.b) == pytest.approx(expected)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            vadd(self.a, self.b[:-1])
        with pytest.raises(ValueError):
            vmul(self.a, self.b[:-1])
        with pytest.raises(ValueError):
            dot(self.a, self.b[:-1])


class TestFir:
    def test_matches_scipy_lfilter(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=100)
        taps = rng.normal(size=8)
        expected = scipy.signal.lfilter(taps, [1.0], x)
        np.testing.assert_allclose(fir_filter(x, taps), expected, atol=1e-10)

    def test_identity_tap(self):
        x = np.arange(10, dtype=float)
        np.testing.assert_allclose(fir_filter(x, np.array([1.0])), x)

    def test_delay_tap(self):
        x = np.arange(10, dtype=float)
        y = fir_filter(x, np.array([0.0, 1.0]))
        np.testing.assert_allclose(y[1:], x[:-1])
        assert y[0] == 0.0

    def test_empty_taps_raises(self):
        with pytest.raises(ValueError):
            fir_filter(np.ones(4), np.array([]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            fir_filter(np.ones((2, 2)), np.ones(2))


class TestWindows:
    @pytest.mark.parametrize("n", [1, 2, 16, 129])
    def test_hanning_matches_numpy(self, n):
        np.testing.assert_allclose(hanning_window(n), np.hanning(n), atol=1e-12)

    @pytest.mark.parametrize("n", [1, 2, 16, 129])
    def test_hamming_matches_numpy(self, n):
        np.testing.assert_allclose(hamming_window(n), np.hamming(n), atol=1e-12)

    @pytest.mark.parametrize("n", [1, 2, 16, 129])
    def test_blackman_matches_numpy(self, n):
        np.testing.assert_allclose(blackman_window(n), np.blackman(n), atol=1e-12)

    def test_invalid_length(self):
        for w in (hanning_window, hamming_window, blackman_window):
            with pytest.raises(ValueError):
                w(0)

    def test_apply_window_broadcasts_over_rows(self):
        x = np.ones((3, 8))
        w = hanning_window(8)
        out = apply_window(x, w)
        for row in out:
            np.testing.assert_allclose(row, w)

    def test_apply_window_length_mismatch(self):
        with pytest.raises(ValueError):
            apply_window(np.ones(8), hanning_window(4))


class TestMagnitudeDb:
    def test_unit_magnitude_is_zero_db(self):
        np.testing.assert_allclose(magnitude_db(np.array([1.0, 1j, -1.0])), 0.0)

    def test_factor_ten_is_twenty_db(self):
        assert magnitude_db(np.array([10.0]))[0] == pytest.approx(20.0)

    def test_zero_clamped_to_floor(self):
        assert magnitude_db(np.array([0.0]), floor_db=-120.0)[0] == pytest.approx(-120.0)


class TestKernelRegistry:
    def test_shelf_contains_core_kernels(self):
        for name in ("vadd", "vmul", "vmag2", "fft_row", "apply_window"):
            assert name in KERNEL_REGISTRY

    def test_get_kernel(self):
        info = get_kernel("vadd")
        assert info.fn is vadd
        assert info.flops(10) == 20.0

    def test_fft_row_flop_model(self):
        info = get_kernel("fft_row")
        assert info.flops(1024) == pytest.approx(5 * 1024 * 10)

    def test_unknown_kernel(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            get_kernel("warpdrive")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_kernel(KernelInfo("vadd", vadd, lambda n: n))

    def test_register_new_kernel(self):
        name = "test_only_kernel"
        try:
            info = register_kernel(KernelInfo(name, abs, lambda n: float(n)))
            assert get_kernel(name) is info
        finally:
            KERNEL_REGISTRY.pop(name, None)
