"""Unit tests for node, interconnect, platform, and cluster models."""

import pytest

from repro.machine import (
    CpuSpec,
    Environment,
    Fabric,
    FabricSpec,
    LinkSpec,
    PLATFORMS,
    SimCluster,
    cspi,
    get_platform,
    mercury,
    perfmodel,
    sigi,
    sky,
)
from repro.machine.node import SimNode


@pytest.fixture
def env():
    return Environment()


def make_cpu(**kw):
    defaults = dict(
        name="test", clock_mhz=200.0, mflops=100.0, copy_bw=200e6, call_overhead=1e-6
    )
    defaults.update(kw)
    return CpuSpec(**defaults)


class TestCpuSpec:
    def test_compute_time_linear_in_flops(self):
        cpu = make_cpu(call_overhead=0.0)
        assert cpu.compute_time(100e6) == pytest.approx(1.0)
        assert cpu.compute_time(50e6) == pytest.approx(0.5)

    def test_compute_time_includes_overhead(self):
        cpu = make_cpu(call_overhead=1e-3)
        assert cpu.compute_time(100e6) == pytest.approx(1.001)

    def test_zero_flops_is_free(self):
        assert make_cpu().compute_time(0) == 0.0

    def test_copy_time(self):
        cpu = make_cpu(call_overhead=0.0)
        assert cpu.copy_time(200e6) == pytest.approx(1.0)

    def test_negative_inputs_rejected(self):
        cpu = make_cpu()
        with pytest.raises(ValueError):
            cpu.compute_time(-1)
        with pytest.raises(ValueError):
            cpu.copy_time(-1)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            make_cpu(mflops=0)
        with pytest.raises(ValueError):
            make_cpu(copy_bw=-1)


class TestSimNode:
    def test_compute_occupies_cpu(self, env):
        node = SimNode(index=0, spec=make_cpu(call_overhead=0.0), env=env)

        def work():
            yield from node.compute(100e6)
            return env.now

        assert env.run(until=env.process(work())) == pytest.approx(1.0)

    def test_two_threads_on_one_node_serialise(self, env):
        node = SimNode(index=0, spec=make_cpu(call_overhead=0.0), env=env)
        ends = []

        def work():
            yield from node.compute(100e6)
            ends.append(env.now)

        env.process(work())
        env.process(work())
        env.run()
        assert ends == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_memory_accounting(self, env):
        node = SimNode(index=0, spec=make_cpu(memory_bytes=1000), env=env)
        node.allocate(600)
        with pytest.raises(MemoryError):
            node.allocate(500)
        node.free(600)
        node.allocate(1000)

    def test_free_too_much_raises(self, env):
        node = SimNode(index=0, spec=make_cpu(), env=env)
        with pytest.raises(ValueError):
            node.free(1)


class TestLinkSpec:
    def test_transfer_time_formula(self):
        link = LinkSpec(latency=1e-6, bandwidth=100e6, sw_overhead=2e-6)
        assert link.transfer_time(100e6) == pytest.approx(1.0 + 3e-6)

    def test_zero_bytes_pays_fixed_costs(self):
        link = LinkSpec(latency=1e-6, bandwidth=100e6, sw_overhead=2e-6)
        assert link.transfer_time(0) == pytest.approx(3e-6)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec(latency=-1, bandwidth=1e6, sw_overhead=0)
        with pytest.raises(ValueError):
            LinkSpec(latency=0, bandwidth=0, sw_overhead=0)


def two_tier_fabric(env, crossbar=True, shared_channels=1):
    spec = FabricSpec(
        name="test",
        inter_board=LinkSpec(latency=10e-6, bandwidth=100e6, sw_overhead=0),
        intra_board=LinkSpec(latency=1e-6, bandwidth=400e6, sw_overhead=0),
        crossbar=crossbar,
        shared_channels=shared_channels,
    )
    # nodes 0,1 on board 0; nodes 2,3 on board 1
    return Fabric(env, spec, {0: 0, 1: 0, 2: 1, 3: 1})


class TestFabric:
    def test_intra_board_faster(self, env):
        fab = two_tier_fabric(env)
        assert fab.transfer_time(0, 1, 1e6) < fab.transfer_time(0, 2, 1e6)

    def test_loopback_is_free(self, env):
        fab = two_tier_fabric(env)
        assert fab.transfer_time(1, 1, 1e9) == 0.0

    def test_crossbar_disjoint_pairs_parallel(self, env):
        fab = two_tier_fabric(env, crossbar=True)
        ends = []

        def xfer(src, dst):
            yield from fab.transfer(src, dst, 100e6)  # 1s + 10us inter-board
            ends.append(env.now)

        env.process(xfer(0, 2))
        env.process(xfer(1, 3))
        env.run()
        assert ends[0] == pytest.approx(1.00001)
        assert ends[1] == pytest.approx(1.00001)

    def test_same_pair_contends(self, env):
        fab = two_tier_fabric(env, crossbar=True)
        ends = []

        def xfer():
            yield from fab.transfer(0, 2, 100e6)
            ends.append(env.now)

        env.process(xfer())
        env.process(xfer())
        env.run()
        assert ends[1] == pytest.approx(2 * ends[0], rel=1e-6)

    def test_shared_medium_serialises_inter_board(self, env):
        fab = two_tier_fabric(env, crossbar=False, shared_channels=1)
        ends = []

        def xfer(src, dst):
            yield from fab.transfer(src, dst, 100e6)
            ends.append(env.now)

        env.process(xfer(0, 2))
        env.process(xfer(1, 3))
        env.run()
        assert ends[1] == pytest.approx(2 * ends[0], rel=1e-6)

    def test_shared_medium_intra_board_not_affected(self, env):
        fab = two_tier_fabric(env, crossbar=False, shared_channels=1)
        ends = []

        def xfer(src, dst):
            yield from fab.transfer(src, dst, 4e6)
            ends.append((src, dst, env.now))

        env.process(xfer(0, 1))
        env.process(xfer(2, 3))
        env.run()
        # Both intra-board transfers complete at the same (fast) time.
        assert ends[0][2] == ends[1][2]


class TestPlatforms:
    @pytest.mark.parametrize("name", sorted(PLATFORMS))
    def test_presets_constructible(self, name):
        p = get_platform(name)
        assert p.cpu.mflops > 0
        assert p.fabric.inter_board.bandwidth > 0

    def test_unknown_platform(self):
        with pytest.raises(KeyError, match="unknown platform"):
            get_platform("cray")

    def test_case_insensitive(self):
        assert get_platform("CSPI").name == "CSPI"

    def test_cspi_matches_paper_section_3_2(self):
        p = cspi()
        assert p.cpu.name == "PowerPC 603e"
        assert p.cpu.clock_mhz == 200.0
        assert p.cpu.memory_bytes == 64 * 1024 * 1024
        assert p.fabric.inter_board.bandwidth == pytest.approx(160e6)
        assert p.cpus_per_board == 4

    def test_board_map_groups_quads(self):
        p = cspi()
        bm = p.board_map(8)
        assert [bm[i] for i in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_fabric_bandwidth_ordering(self):
        # SKY backplane > Mercury RACEway > CSPI Myrinet > SIGI
        bws = {
            p().name: p().fabric.inter_board.bandwidth
            for p in (cspi, mercury, sky, sigi)
        }
        assert bws["SKY"] > bws["Mercury"] > bws["CSPI"] > bws["SIGI"]


class TestSimCluster:
    def test_from_platform(self, env):
        cluster = SimCluster.from_platform(env, cspi(), 8)
        assert len(cluster) == 8
        assert cluster.node(0).board == 0
        assert cluster.node(7).board == 1

    def test_node_index_error(self, env):
        cluster = SimCluster.from_platform(env, cspi(), 4)
        with pytest.raises(IndexError):
            cluster.node(4)

    def test_invalid_node_count(self, env):
        with pytest.raises(ValueError):
            SimCluster.from_platform(env, cspi(), 0)

    def test_cross_board_transfer_slower_than_intra(self, env):
        cluster = SimCluster.from_platform(env, cspi(), 8)
        nbytes = 1 << 20
        intra = cluster.fabric.transfer_time(0, 1, nbytes)
        inter = cluster.fabric.transfer_time(0, 4, nbytes)
        assert inter > intra


class TestPerfModel:
    def test_fft_flops_formula(self):
        assert perfmodel.fft_flops(1024) == pytest.approx(5 * 1024 * 10)

    def test_fft_flops_length_one(self):
        assert perfmodel.fft_flops(1) == 0.0

    def test_fft_flops_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            perfmodel.fft_flops(100)

    def test_fft2d_is_two_row_passes(self):
        n = 256
        assert perfmodel.fft2d_flops(n) == pytest.approx(2 * n * perfmodel.fft_flops(n))

    def test_corner_turn_message_bytes(self):
        # 1024x1024 complex64 over 4 nodes: each tile 256x256x8 bytes
        assert perfmodel.corner_turn_message_bytes(1024, 4) == 256 * 256 * 8

    def test_corner_turn_indivisible_rejected(self):
        with pytest.raises(ValueError):
            perfmodel.corner_turn_message_bytes(1000, 3)
