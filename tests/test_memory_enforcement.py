"""Runtime DRAM-footprint enforcement tests (the §3.2 64 MB-per-CPU limit)."""

import pytest

from repro.apps import benchmark_mapping, corner_turn_model, fft2d_model
from repro.core.codegen import generate_glue
from repro.core.runtime import DEFAULT_CONFIG, SageRuntime
from repro.machine import Environment, SimCluster, cspi


def make_runtime(app, nodes, config=None):
    glue = generate_glue(app, benchmark_mapping(app, nodes), num_processors=nodes)
    env = Environment()
    cluster = SimCluster.from_platform(env, cspi(), nodes)
    return SageRuntime(glue, cluster, config=config or DEFAULT_CONFIG.timing_only())


def test_benchmark_sizes_fit():
    """Every Table 1.0 configuration fits the 64 MB boards."""
    for n in (256, 512, 1024):
        for nodes in (2, 4, 8):
            make_runtime(corner_turn_model(n, nodes), nodes)
            make_runtime(fft2d_model(n, nodes), nodes)


def test_oversized_matrix_rejected():
    app = corner_turn_model(4096, 2)  # 128 MB logical buffer
    with pytest.raises(MemoryError, match="physical buffers need"):
        make_runtime(app, 2)


def test_more_nodes_make_it_fit():
    # 2048^2 complex64 = 32 MB logical; 2 nodes hold ~48 MB each (3 buffer
    # endpoints x 16 MB regions) - fits; verify the footprint arithmetic.
    runtime = make_runtime(corner_turn_model(2048, 2), 2)
    fp = runtime.memory_footprint()
    assert all(v <= 64 * 1024 * 1024 for v in fp.values())


def test_enforcement_can_be_disabled():
    app = corner_turn_model(4096, 2)
    cfg = DEFAULT_CONFIG.timing_only()
    import dataclasses

    cfg = dataclasses.replace(cfg, enforce_memory=False)
    runtime = make_runtime(app, 2, config=cfg)  # no raise
    assert max(runtime.memory_footprint().values()) > 64 * 1024 * 1024


def test_footprint_scales_inversely_with_nodes():
    fp4 = make_runtime(fft2d_model(1024, 4), 4).memory_footprint()
    fp8 = make_runtime(fft2d_model(1024, 8), 8).memory_footprint()
    assert max(fp8.values()) < max(fp4.values())
