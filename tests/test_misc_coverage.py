"""Coverage for small public-surface corners not exercised elsewhere."""

import pytest

from repro.core.alter import Interpreter
from repro.machine import perfmodel
from repro.mpi import copy_payload, payload_nbytes


class TestPerfModelCorners:
    def test_fft_rows_flops(self):
        assert perfmodel.fft_rows_flops(4, 256) == pytest.approx(4 * 5 * 256 * 8)
        assert perfmodel.fft_rows_flops(0, 256) == 0.0
        with pytest.raises(ValueError):
            perfmodel.fft_rows_flops(-1, 256)

    def test_transpose_bytes(self):
        assert perfmodel.transpose_bytes(1024) == 1024 * 1024 * 8
        assert perfmodel.transpose_bytes(4, elem_bytes=4) == 64
        with pytest.raises(ValueError):
            perfmodel.transpose_bytes(0)

    def test_byte_constants(self):
        assert perfmodel.COMPLEX64_BYTES == 8
        assert perfmodel.COMPLEX128_BYTES == 16
        assert perfmodel.FLOAT32_BYTES == 4


class TestPayloadHelpers:
    def test_nbytes_of_none_and_bytes(self):
        assert payload_nbytes(None) == 0
        assert payload_nbytes(b"1234") == 4
        assert payload_nbytes(memoryview(b"12")) == 2

    def test_nbytes_of_pickled_object(self):
        assert payload_nbytes({"k": [1, 2, 3]}) > 0

    def test_nbytes_of_unpicklable_falls_back(self):
        assert payload_nbytes(lambda: None) == 64  # token-sized header

    def test_copy_payload_scalars_pass_through(self):
        for v in (5, 2.5, 1 + 2j, "s", b"b", True, None):
            assert copy_payload(v) == v

    def test_copy_payload_deep_copies_containers(self):
        original = {"a": [1, 2]}
        copied = copy_payload(original)
        copied["a"].append(3)
        assert original == {"a": [1, 2]}


class TestAlterDisplayBuiltins:
    def test_display_and_newline_emit(self):
        interp = Interpreter()
        interp.run('(display "x")(newline)(display 5)')
        assert interp.output() == "x\n5"

    def test_display_of_lists_and_bools(self):
        interp = Interpreter()
        interp.run("(display (list 1 #t \"s\"))")
        assert interp.output() == "(1 #t s)"


class TestProjectSourceInterval:
    def test_execute_with_source_interval(self):
        from repro import SageProject
        from repro.apps import fft2d_model

        project = SageProject(fft2d_model(64, 2), nodes=2)
        project.generate()
        base = project.execute(iterations=3)
        interval = base.mean_latency * 2
        from repro.core.runtime import DEFAULT_CONFIG

        throttled = project.execute(
            iterations=3,
            config=DEFAULT_CONFIG.timing_only().pipelined(),
            source_interval=interval,
        )
        assert throttled.period == pytest.approx(interval, rel=0.02)


class TestTraceSpanQueries:
    def test_by_iteration_and_function(self):
        from repro.core.runtime import ProbeEvent, Trace

        trace = Trace()
        for k in range(2):
            trace.record(ProbeEvent(float(k), "enter", "f", 0, 0, 0, k))
            trace.record(ProbeEvent(float(k) + 0.5, "exit", "f", 0, 0, 0, k))
        assert len(trace.by_iteration(1)) == 2
        assert len(trace.by_function("f")) == 4
        assert len(trace.by_processor(0)) == 4
        assert trace.span == pytest.approx(1.5)
        spans = trace.spans(function="f")
        assert len(spans) == 2
