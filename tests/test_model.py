"""Designer model layer tests: datatypes, application graphs, hardware, shelves, mapping."""

import pytest

from repro.core.model import (
    ApplicationModel,
    BoardElement,
    CompositeBlock,
    DataType,
    FunctionBlock,
    HardwareModel,
    Mapping,
    ModelError,
    ProcessorElement,
    REPLICATED,
    Striping,
    block_mapping,
    cspi_hardware,
    from_platform,
    hardware_shelf,
    round_robin_mapping,
    single_node_mapping,
    software_shelf,
    striped,
)
from repro.machine import Environment, cspi


MTYPE = DataType("m", "complex64", (64, 64))


class TestDataType:
    def test_sizes(self):
        assert MTYPE.elem_bytes == 8
        assert MTYPE.total_elems == 64 * 64
        assert MTYPE.total_bytes == 64 * 64 * 8

    def test_bad_dtype_rejected(self):
        with pytest.raises(TypeError):
            DataType("x", "notatype", (4,))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            DataType("x", "float32", (0, 4))

    def test_with_shape(self):
        t = MTYPE.with_shape((8, 8))
        assert t.shape == (8, 8)
        assert t.dtype == MTYPE.dtype

    def test_empty_allocates_correct_array(self):
        arr = MTYPE.empty()
        assert arr.shape == (64, 64)
        assert arr.dtype.name == "complex64"


class TestStriping:
    def test_replicated(self):
        assert not REPLICATED.is_striped
        assert REPLICATED.describe() == "replicated"

    def test_striped(self):
        s = striped(1)
        assert s.is_striped and s.axis == 1
        assert "axis=1" in s.describe()

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            Striping("diagonal")

    def test_dict_roundtrip(self):
        s = striped(1)
        assert Striping.from_dict(s.to_dict()) == s


def build_pipeline(threads=4):
    """source -> fft(striped0) -> turn(striped0 -> striped1) -> sink"""
    app = ApplicationModel("pipeline")
    src = app.add_block(FunctionBlock("src", kernel="matrix_source"))
    src.add_out("out", MTYPE, striped(0))
    fft = app.add_block(FunctionBlock("fft", kernel="fft_rows", threads=threads))
    fft.add_in("in", MTYPE, striped(0))
    fft.add_out("out", MTYPE, striped(0))
    turn = app.add_block(FunctionBlock("turn", kernel="block_transpose", threads=threads))
    turn.add_in("in", MTYPE, striped(1))
    turn.add_out("out", MTYPE, striped(0))
    sink = app.add_block(FunctionBlock("sink", kernel="matrix_sink"))
    sink.add_in("in", MTYPE, REPLICATED)
    app.connect(src.port("out"), fft.port("in"))
    app.connect(fft.port("out"), turn.port("in"))
    app.connect(turn.port("out"), sink.port("in"))
    return app


class TestApplicationModel:
    def test_function_ids_assigned_in_order(self):
        app = build_pipeline()
        instances = app.function_instances()
        assert [i.function_id for i in instances] == [0, 1, 2, 3]
        assert [i.path for i in instances] == ["src", "fft", "turn", "sink"]

    def test_duplicate_block_name_rejected(self):
        app = ApplicationModel("a")
        app.add_block(FunctionBlock("x", kernel="k"))
        with pytest.raises(ModelError):
            app.add_block(FunctionBlock("x", kernel="k"))

    def test_duplicate_port_rejected(self):
        blk = FunctionBlock("b", kernel="k")
        blk.add_in("p", MTYPE)
        with pytest.raises(ModelError):
            blk.add_in("p", MTYPE)

    def test_arc_direction_enforced(self):
        app = ApplicationModel("a")
        b1 = app.add_block(FunctionBlock("b1", kernel="k"))
        b1.add_in("i", MTYPE)
        b2 = app.add_block(FunctionBlock("b2", kernel="k"))
        b2.add_out("o", MTYPE)
        with pytest.raises(ModelError, match="direction"):
            app.connect(b1.port("i"), b2.port("o"))

    def test_arc_dtype_mismatch_rejected(self):
        app = ApplicationModel("a")
        b1 = app.add_block(FunctionBlock("b1", kernel="k"))
        b1.add_out("o", DataType("f", "float32", (4,)))
        b2 = app.add_block(FunctionBlock("b2", kernel="k"))
        b2.add_in("i", DataType("c", "complex64", (4,)))
        with pytest.raises(ModelError, match="mismatch"):
            app.connect(b1.port("o"), b2.port("i"))

    def test_arc_to_foreign_block_rejected(self):
        app = ApplicationModel("a")
        inner = FunctionBlock("stray", kernel="k")  # never added
        inner.add_out("o", MTYPE)
        b = app.add_block(FunctionBlock("b", kernel="k"))
        b.add_in("i", MTYPE)
        with pytest.raises(ModelError, match="not inside"):
            app.connect(inner.port("o"), b.port("i"))

    def test_topological_order_follows_dataflow(self):
        app = build_pipeline()
        order = [i.path for i in app.topological_order()]
        assert order == ["src", "fft", "turn", "sink"]

    def test_cycle_detected(self):
        app = ApplicationModel("cyc")
        a = app.add_block(FunctionBlock("a", kernel="k"))
        a.add_in("i", MTYPE)
        a.add_out("o", MTYPE)
        b = app.add_block(FunctionBlock("b", kernel="k"))
        b.add_in("i", MTYPE)
        b.add_out("o", MTYPE)
        app.connect(a.port("o"), b.port("i"))
        app.connect(b.port("o"), a.port("i"))
        with pytest.raises(ModelError, match="cycle"):
            app.topological_order()

    def test_threads_validation(self):
        with pytest.raises(ModelError):
            FunctionBlock("b", kernel="k", threads=0)

    def test_instance_by_path(self):
        app = build_pipeline()
        inst = app.instance_by_path("turn")
        assert inst.kernel == "block_transpose"
        with pytest.raises(ModelError):
            app.instance_by_path("nope")

    def test_properties(self):
        blk = FunctionBlock("b", kernel="k")
        blk.set_property("color", "red")
        assert blk.get_property("color") == "red"
        assert blk.get_property("missing", 7) == 7
        assert blk.properties() == {"color": "red"}


class TestHierarchy:
    def build_nested(self):
        app = ApplicationModel("nested")
        src = app.add_block(FunctionBlock("src", kernel="matrix_source"))
        src.add_out("out", MTYPE, striped(0))
        comp = CompositeBlock("stage")
        inner = comp.add_block(FunctionBlock("work", kernel="fft_rows", threads=2))
        inner.add_in("in", MTYPE, striped(0))
        inner.add_out("out", MTYPE, striped(0))
        comp.export(inner.port("in"), as_name="in")
        comp.export(inner.port("out"), as_name="out")
        app.add_block(comp)
        sink = app.add_block(FunctionBlock("sink", kernel="matrix_sink"))
        sink.add_in("in", MTYPE)
        app.connect(src.port("out"), comp.port("in"))
        app.connect(comp.port("out"), sink.port("in"))
        return app

    def test_flatten_assigns_dotted_paths(self):
        app = self.build_nested()
        paths = [i.path for i in app.function_instances()]
        assert paths == ["src", "stage.work", "sink"]

    def test_flattened_arcs_resolve_exports(self):
        app = self.build_nested()
        arcs = [(s.qualified_name, d.qualified_name) for s, d in app.flattened_arcs()]
        assert ("src.out", "work.in") in arcs
        assert ("work.out", "sink.in") in arcs

    def test_topological_order_through_hierarchy(self):
        app = self.build_nested()
        order = [i.path for i in app.topological_order()]
        assert order == ["src", "stage.work", "sink"]

    def test_unknown_export_raises(self):
        comp = CompositeBlock("c")
        with pytest.raises(ModelError):
            comp.resolve_export("ghost")


class TestHardwareModel:
    def test_cspi_hardware_structure(self):
        hw = cspi_hardware(nodes=8)
        assert hw.processor_count == 8
        assert len(hw.boards) == 2
        assert hw.board_map()[0] == 0 and hw.board_map()[7] == 1

    def test_partial_board(self):
        hw = cspi_hardware(nodes=6)
        assert hw.processor_count == 6
        assert len(hw.boards) == 2
        assert len(hw.boards[1].processors) == 2

    def test_build_cluster(self):
        env = Environment()
        cluster = cspi_hardware(nodes=4).build_cluster(env)
        assert len(cluster) == 4
        assert cluster.node(0).spec.name == "PowerPC 603e"

    def test_empty_hardware_rejected(self):
        hw = HardwareModel("empty", cspi().fabric)
        with pytest.raises(ModelError):
            hw.validate()

    def test_heterogeneous_cpus_supported(self):
        hw = HardwareModel("mixed", cspi().fabric)
        board = hw.add_board(BoardElement("b0"))
        board.add_processor(ProcessorElement("p0", cspi().cpu))
        other = cspi().cpu.__class__(
            name="other", clock_mhz=100, mflops=50, copy_bw=1e8
        )
        board.add_processor(ProcessorElement("p1", other))
        assert hw.is_heterogeneous
        env = Environment()
        cluster = hw.build_cluster(env)
        assert cluster.is_heterogeneous
        assert cluster.node(0).spec.mflops == cspi().cpu.mflops
        assert cluster.node(1).spec.mflops == 50

    def test_from_platform_zero_nodes(self):
        with pytest.raises(ModelError):
            from_platform(cspi(), 0)


class TestShelves:
    def test_software_shelf_has_isspl_and_structural(self):
        shelf = software_shelf()
        assert "vadd" in shelf
        assert "fft_rows" in shelf
        assert "matrix_source" in shelf
        assert shelf.category_of("vadd") == "isspl"
        assert shelf.category_of("fft_rows") == "structural"

    def test_take_yields_fresh_blocks(self):
        shelf = software_shelf()
        b1 = shelf.take("vadd", "adder1", threads=2)
        b2 = shelf.take("vadd", "adder2")
        assert b1 is not b2
        assert b1.threads == 2 and b2.threads == 1

    def test_unknown_item(self):
        shelf = software_shelf()
        with pytest.raises(ModelError, match="no item"):
            shelf.take("quantum_fft", "x")

    def test_duplicate_put_rejected(self):
        shelf = software_shelf()
        with pytest.raises(ModelError):
            shelf.put("vadd", lambda: None)

    def test_hardware_shelf_builds_models(self):
        shelf = hardware_shelf()
        hw = shelf.take("cspi", nodes=8)
        assert hw.processor_count == 8
        assert shelf.items(category="platform") == ["cspi", "mercury", "sigi", "sky"]

    def test_items_listing(self):
        shelf = software_shelf()
        assert "vmul" in shelf.items()
        assert len(shelf) == len(shelf.items())


class TestMapping:
    def test_round_robin_colocates_same_thread_index(self):
        app = build_pipeline(threads=4)
        m = round_robin_mapping(app, 4)
        fft_id = app.instance_by_path("fft").function_id
        turn_id = app.instance_by_path("turn").function_id
        for t in range(4):
            assert m.processor_of(fft_id, t) == m.processor_of(turn_id, t) == t

    def test_single_node(self):
        app = build_pipeline()
        m = single_node_mapping(app)
        assert m.processors_used() == [0]

    def test_block_mapping_spreads(self):
        app = build_pipeline(threads=2)
        m = block_mapping(app, 4)
        assert set(m.processors_used()) <= {0, 1, 2, 3}

    def test_validate_catches_out_of_range(self):
        app = build_pipeline(threads=4)
        m = round_robin_mapping(app, 8)
        with pytest.raises(ModelError, match="hardware has only"):
            m.validate(app, processor_count=2)

    def test_validate_catches_missing(self):
        app = build_pipeline()
        with pytest.raises(ModelError, match="no mapping"):
            Mapping().validate(app, processor_count=4)

    def test_dict_roundtrip(self):
        app = build_pipeline(threads=3)
        m = round_robin_mapping(app, 4)
        assert Mapping.from_dict(m.to_dict()) == m

    def test_threads_on(self):
        app = build_pipeline(threads=4)
        m = round_robin_mapping(app, 2)
        on0 = m.threads_on(0)
        assert all(t % 2 == 0 for _, t in on0)
