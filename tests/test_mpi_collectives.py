"""Collective-operation semantics tests (validated against numpy equivalents)."""

import numpy as np
import pytest

from repro.machine import Environment, SimCluster, cspi
from repro.mpi import MpiError, MpiWorld, RankError


def run_collective(nodes, prog):
    env = Environment()
    world = MpiWorld(SimCluster.from_platform(env, cspi(), nodes))
    world.spawn(prog)
    return world.run()


@pytest.mark.parametrize("nodes", [1, 2, 3, 4, 7, 8])
def test_barrier_synchronises(nodes):
    arrival_spread = []

    def prog(comm):
        # Stagger entry times.
        yield comm.env.timeout(comm.rank * 0.01)
        yield from comm.barrier()
        arrival_spread.append(comm.now)

    run_collective(nodes, prog)
    # Everyone leaves the barrier no earlier than the last entrant.
    assert min(arrival_spread) >= (nodes - 1) * 0.01


@pytest.mark.parametrize("nodes", [1, 2, 3, 4, 5, 8])
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast_delivers_to_all(nodes, root):
    root = nodes - 1 if root == "last" else 0
    payload = np.arange(16, dtype=np.float32)

    def prog(comm):
        data = payload if comm.rank == root else None
        out = yield from comm.bcast(data, root=root)
        return out

    results = run_collective(nodes, prog)
    for r in results:
        assert np.array_equal(r, payload)


@pytest.mark.parametrize("nodes", [2, 4, 8])
def test_scatter_distributes_chunks(nodes):
    def prog(comm):
        chunks = [f"chunk{i}" for i in range(comm.size)] if comm.rank == 0 else None
        mine = yield from comm.scatter(chunks, root=0)
        return mine

    assert run_collective(nodes, prog) == [f"chunk{i}" for i in range(nodes)]


def test_scatter_wrong_chunk_count_raises():
    def prog(comm):
        chunks = ["only-one"] if comm.rank == 0 else None
        yield from comm.scatter(chunks, root=0)

    with pytest.raises(MpiError):
        run_collective(2, prog)


@pytest.mark.parametrize("nodes", [2, 3, 8])
def test_gather_collects_in_rank_order(nodes):
    def prog(comm):
        out = yield from comm.gather(comm.rank * 10, root=0)
        return out

    results = run_collective(nodes, prog)
    assert results[0] == [i * 10 for i in range(nodes)]
    assert all(r is None for r in results[1:])


@pytest.mark.parametrize("nodes", [2, 3, 4, 8])
def test_allgather_everyone_gets_everything(nodes):
    def prog(comm):
        out = yield from comm.allgather(comm.rank + 100)
        return out

    results = run_collective(nodes, prog)
    expected = [i + 100 for i in range(nodes)]
    assert all(r == expected for r in results)


@pytest.mark.parametrize("nodes", [2, 3, 4, 7, 8])
@pytest.mark.parametrize("op,combine", [("sum", np.add), ("max", np.maximum), ("min", np.minimum)])
def test_reduce_matches_numpy(nodes, op, combine):
    rng = np.random.default_rng(42)
    contributions = [rng.normal(size=8) for _ in range(nodes)]

    def prog(comm):
        out = yield from comm.reduce(contributions[comm.rank], op=op, root=0)
        return out

    results = run_collective(nodes, prog)
    expected = contributions[0]
    for c in contributions[1:]:
        expected = combine(expected, c)
    np.testing.assert_allclose(results[0], expected)
    assert all(r is None for r in results[1:])


def test_reduce_unknown_op_raises():
    def prog(comm):
        yield from comm.reduce(1.0, op="xor", root=0)

    with pytest.raises(MpiError):
        run_collective(2, prog)


@pytest.mark.parametrize("nodes", [2, 3, 4, 8])
def test_allreduce_sum_everyone_agrees(nodes):
    def prog(comm):
        out = yield from comm.allreduce(np.full(4, float(comm.rank + 1)), op="sum")
        return out

    results = run_collective(nodes, prog)
    expected = np.full(4, sum(range(1, nodes + 1)), dtype=float)
    for r in results:
        np.testing.assert_allclose(r, expected)


def test_allreduce_results_bit_identical_across_ranks():
    # Fixed combine order must make all ranks agree exactly, not just approx.
    rng = np.random.default_rng(7)
    contributions = [rng.normal(size=64) for _ in range(8)]

    def prog(comm):
        out = yield from comm.allreduce(contributions[comm.rank], op="sum")
        return out

    results = run_collective(8, prog)
    for r in results[1:]:
        assert np.array_equal(r, results[0])


@pytest.mark.parametrize("nodes", [2, 4, 8])
def test_alltoall_semantics(nodes):
    def prog(comm):
        blocks = [f"{comm.rank}->{d}" for d in range(comm.size)]
        out = yield from comm.alltoall(blocks)
        return out

    results = run_collective(nodes, prog)
    for d, received in enumerate(results):
        assert received == [f"{s}->{d}" for s in range(nodes)]


def test_alltoall_wrong_block_count():
    def prog(comm):
        yield from comm.alltoall(["too-few"])

    with pytest.raises(MpiError):
        run_collective(4, prog)


def test_bcast_bad_root():
    def prog(comm):
        yield from comm.bcast(1, root=9)

    with pytest.raises(RankError, match="out of range"):
        run_collective(2, prog)


def test_consecutive_collectives_do_not_cross_match():
    def prog(comm):
        a = yield from comm.allgather(("a", comm.rank))
        b = yield from comm.allgather(("b", comm.rank))
        return (a, b)

    results = run_collective(4, prog)
    for a, b in results:
        assert all(x[0] == "a" for x in a)
        assert all(x[0] == "b" for x in b)


def test_collective_mixed_with_user_p2p_tags():
    def prog(comm):
        if comm.rank == 0:
            yield from comm.send("user", dest=1, tag=0)
        total = yield from comm.allreduce(1, op="sum")
        if comm.rank == 1:
            extra = yield from comm.recv(source=0, tag=0)
            return (total, extra)
        return (total, None)

    results = run_collective(2, prog)
    assert results[0][0] == 2
    assert results[1] == (2, "user")
