"""Tests for the extended collectives: scan, reduce_scatter, v-variants."""

import numpy as np
import pytest

from repro.machine import Environment, SimCluster, cspi
from repro.mpi import MpiError, MpiWorld


def run_collective(nodes, prog):
    env = Environment()
    world = MpiWorld(SimCluster.from_platform(env, cspi(), nodes))
    world.spawn(prog)
    return world.run()


@pytest.mark.parametrize("nodes", [1, 2, 3, 4, 8])
def test_scan_inclusive_prefix_sum(nodes):
    def prog(comm):
        out = yield from comm.scan(comm.rank + 1, op="sum")
        return out

    results = run_collective(nodes, prog)
    assert results == [sum(range(1, r + 2)) for r in range(nodes)]


def test_scan_with_arrays():
    def prog(comm):
        out = yield from comm.scan(np.full(4, float(comm.rank)), op="sum")
        return out

    results = run_collective(4, prog)
    for r, out in enumerate(results):
        np.testing.assert_allclose(out, np.full(4, sum(range(r + 1))))


@pytest.mark.parametrize("nodes", [2, 4, 8])
def test_scan_max(nodes):
    values = [3, 9, 1, 7, 2, 8, 0, 5][:nodes]

    def prog(comm):
        out = yield from comm.scan(values[comm.rank], op="max")
        return out

    results = run_collective(nodes, prog)
    expected = [max(values[: r + 1]) for r in range(nodes)]
    assert results == expected


@pytest.mark.parametrize("nodes", [2, 4, 8])
def test_reduce_scatter_sum(nodes):
    def prog(comm):
        # rank s contributes blocks[d] = s*10 + d for each destination d
        blocks = [comm.rank * 10 + d for d in range(comm.size)]
        out = yield from comm.reduce_scatter(blocks, op="sum")
        return out

    results = run_collective(nodes, prog)
    for d, got in enumerate(results):
        assert got == sum(s * 10 + d for s in range(nodes))


def test_reduce_scatter_wrong_block_count():
    def prog(comm):
        yield from comm.reduce_scatter([1])

    with pytest.raises(MpiError):
        run_collective(4, prog)


def test_scatterv_variable_sizes():
    def prog(comm):
        chunks = None
        if comm.rank == 0:
            chunks = [np.arange(i + 1, dtype=float) for i in range(comm.size)]
        mine = yield from comm.scatterv(chunks, root=0)
        return mine.size

    assert run_collective(4, prog) == [1, 2, 3, 4]


def test_gatherv_variable_sizes():
    def prog(comm):
        data = np.full(comm.rank + 1, float(comm.rank))
        out = yield from comm.gatherv(data, root=0)
        if comm.rank == 0:
            return [x.size for x in out]
        return None

    results = run_collective(4, prog)
    assert results[0] == [1, 2, 3, 4]


def test_alltoallv_variable_blocks():
    def prog(comm):
        # block for destination d has d+1 elements tagged with the source
        blocks = [np.full(d + 1, float(comm.rank)) for d in range(comm.size)]
        out = yield from comm.alltoallv(blocks)
        return [(x.size, x[0]) for x in out]

    results = run_collective(4, prog)
    for d, received in enumerate(results):
        assert received == [(d + 1, float(s)) for s in range(4)]


def test_scan_then_allreduce_compose():
    def prog(comm):
        prefix = yield from comm.scan(1, op="sum")
        total = yield from comm.allreduce(prefix, op="max")
        return total

    results = run_collective(4, prog)
    assert all(r == 4 for r in results)
