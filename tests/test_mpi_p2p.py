"""Point-to-point message passing tests."""

import numpy as np
import pytest

from repro.machine import Environment, SimCluster, cspi
from repro.mpi import ANY_SOURCE, ANY_TAG, MpiError, MpiWorld, RankError


def make_world(nodes=4):
    env = Environment()
    return MpiWorld(SimCluster.from_platform(env, cspi(), nodes))


def test_send_recv_roundtrip():
    world = make_world(2)

    def prog(comm):
        if comm.rank == 0:
            yield from comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
            return None
        data = yield from comm.recv(source=0, tag=11)
        return data

    results = world.run() if world._procs else None
    world = make_world(2)
    world.spawn(prog)
    results = world.run()
    assert results[1] == {"a": 7, "b": 3.14}


def test_numpy_payload_is_copied_not_aliased():
    world = make_world(2)
    src = np.arange(10, dtype=np.float64)

    def sender(comm):
        yield from comm.send(src, dest=1)
        src[:] = -1  # mutate after send; receiver must not see it

    def receiver(comm):
        data = yield from comm.recv(source=0)
        return data

    world.spawn_rank(0, sender)
    p = world.spawn_rank(1, receiver)
    world.env.run(until=p)
    assert np.array_equal(p.value, np.arange(10, dtype=np.float64))


def test_tag_matching_out_of_order():
    world = make_world(2)

    def sender(comm):
        yield from comm.send("first", dest=1, tag=1)
        yield from comm.send("second", dest=1, tag=2)

    def receiver(comm):
        b = yield from comm.recv(source=0, tag=2)
        a = yield from comm.recv(source=0, tag=1)
        return (a, b)

    world.spawn_rank(0, sender)
    p = world.spawn_rank(1, receiver)
    world.env.run(until=p)
    assert p.value == ("first", "second")


def test_any_source_any_tag():
    world = make_world(3)

    def sender(comm):
        yield from comm.send(comm.rank, dest=2, tag=comm.rank * 10)

    def receiver(comm):
        got = set()
        for _ in range(2):
            v = yield from comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
            got.add(v)
        return got

    world.spawn_rank(0, sender)
    world.spawn_rank(1, sender)
    p = world.spawn_rank(2, receiver)
    world.env.run(until=p)
    assert p.value == {0, 1}


def test_recv_msg_reports_envelope():
    world = make_world(2)

    def sender(comm):
        yield from comm.send(b"xyz", dest=1, tag=5)

    def receiver(comm):
        msg = yield from comm.recv_msg()
        return (msg.source, msg.tag, msg.nbytes, msg.data)

    world.spawn_rank(0, sender)
    p = world.spawn_rank(1, receiver)
    world.env.run(until=p)
    assert p.value == (0, 5, 3, b"xyz")


def test_isend_irecv_requests():
    world = make_world(2)

    def prog(comm):
        if comm.rank == 0:
            req = comm.isend(np.ones(4), dest=1)
            yield from req.wait()
            return True
        req = comm.irecv(source=0)
        data = yield from req.wait()
        return data.sum()

    world.spawn(prog)
    results = world.run()
    assert results[1] == 4.0


def test_sendrecv_pair_exchange_no_deadlock():
    world = make_world(2)

    def prog(comm):
        other = 1 - comm.rank
        got = yield from comm.sendrecv(f"from{comm.rank}", dest=other, source=other)
        return got

    world.spawn(prog)
    assert world.run() == ["from1", "from0"]


def test_transfer_time_scales_with_message_size():
    def latency_of(nbytes):
        world = make_world(2)

        def sender(comm):
            yield from comm.send(np.zeros(nbytes, dtype=np.uint8), dest=1)

        def receiver(comm):
            yield from comm.recv(source=0)
            return comm.now

        world.spawn_rank(0, sender)
        p = world.spawn_rank(1, receiver)
        world.env.run(until=p)
        return p.value

    t_small, t_big = latency_of(1 << 10), latency_of(1 << 20)
    assert t_big > t_small
    # Large-message time dominated by bandwidth: ~1MB at 220MB/s intra-board.
    assert t_big == pytest.approx((1 << 20) / 220e6, rel=0.05)


def test_inter_board_message_slower_than_intra():
    def latency(src, dst):
        world = make_world(8)

        def sender(comm):
            yield from comm.send(np.zeros(1 << 20, dtype=np.uint8), dest=dst)

        def receiver(comm):
            yield from comm.recv(source=src)
            return comm.now

        world.spawn_rank(src, sender)
        p = world.spawn_rank(dst, receiver)
        world.env.run(until=p)
        return p.value

    assert latency(0, 4) > latency(0, 1)


def test_loopback_send_is_local_copy():
    world = make_world(2)

    def prog(comm):
        yield from comm.send("self", dest=0)
        v = yield from comm.recv(source=0)
        return (v, comm.now)

    p = world.spawn_rank(0, prog)
    world.env.run(until=p)
    v, t = p.value
    assert v == "self"
    # Much cheaper than a fabric message would be.
    assert t < cspi().fabric.intra_board.transfer_time(4)


def test_bad_dest_rank_raises():
    world = make_world(2)

    def prog(comm):
        yield from comm.send(1, dest=5)

    world.spawn_rank(0, prog)
    with pytest.raises(RankError):
        world.env.run()


def test_bad_source_rank_raises():
    world = make_world(2)

    def prog(comm):
        yield from comm.recv(source=17)

    world.spawn_rank(0, prog)
    with pytest.raises(RankError):
        world.env.run()


def test_run_without_programs_raises():
    with pytest.raises(MpiError):
        make_world(2).run()


def test_traffic_accounting():
    world = make_world(2)

    def prog(comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(100, dtype=np.uint8), dest=1)
        else:
            yield from comm.recv(source=0)

    world.spawn(prog)
    world.run()
    assert world.total_messages == 1
    assert world.total_bytes == 100
    assert world.comms[0].bytes_sent == 100
    assert world.comms[1].bytes_sent == 0


def test_probe_nonblocking():
    world = make_world(2)

    def sender(comm):
        yield from comm.send("hello", dest=1, tag=3)

    def receiver(comm):
        assert comm.probe() is None
        yield from comm.recv(source=0, tag=3)  # ensure arrival ordering
        return True

    world.spawn_rank(0, sender)
    p = world.spawn_rank(1, receiver)
    world.env.run(until=p)
    assert p.value is True


def test_many_ranks_ring_pass():
    world = make_world(8)

    def prog(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        token = yield from comm.sendrecv(comm.rank, dest=right, source=left)
        return token

    world.spawn(prog)
    results = world.run()
    assert results == [(r - 1) % 8 for r in range(8)]
