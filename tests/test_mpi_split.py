"""Sub-communicator (comm.split) tests: grouping, isolation, collectives
within groups, and the row/column pattern for 2-D decompositions."""


from repro.machine import Environment, SimCluster, cspi
from repro.mpi import MpiWorld


def run(nodes, prog):
    env = Environment()
    world = MpiWorld(SimCluster.from_platform(env, cspi(), nodes))
    world.spawn(prog)
    return world.run()


class TestSplitBasics:
    def test_even_odd_groups(self):
        def prog(comm):
            sub = yield from comm.split(color=comm.rank % 2)
            return (sub.rank, sub.size, sub.global_rank)

        results = run(8, prog)
        for g, (local, size, global_rank) in enumerate(results):
            assert size == 4
            assert global_rank == g
            assert local == g // 2

    def test_none_color_returns_none(self):
        def prog(comm):
            sub = yield from comm.split(color=0 if comm.rank < 2 else None)
            return sub if sub is None else (sub.rank, sub.size)

        results = run(4, prog)
        assert results[0] == (0, 2) and results[1] == (1, 2)
        assert results[2] is None and results[3] is None

    def test_key_reorders_ranks(self):
        def prog(comm):
            # reverse order within the single group
            sub = yield from comm.split(color=0, key=-comm.rank)
            return sub.rank

        results = run(4, prog)
        assert results == [3, 2, 1, 0]

    def test_members_share_context(self):
        def prog(comm):
            sub = yield from comm.split(color=comm.rank // 2)
            return (sub.context, tuple(sub.members))

        results = run(4, prog)
        assert results[0] == results[1]
        assert results[2] == results[3]
        assert results[0][0] != results[2][0]  # distinct contexts


class TestSplitCommunication:
    def test_p2p_within_group_uses_local_ranks(self):
        def prog(comm):
            sub = yield from comm.split(color=comm.rank % 2)
            if sub.rank == 0:
                yield from sub.send(f"from-global-{comm.rank}", dest=1)
                return None
            if sub.rank == 1:
                msg = yield from sub.recv_msg(source=0)
                return (msg.data, msg.source)
            return None

        results = run(4, prog)
        assert results[2] == ("from-global-0", 0)
        assert results[3] == ("from-global-1", 0)

    def test_groups_do_not_cross_talk(self):
        """Same tags in two groups never mismatch (context isolation)."""
        def prog(comm):
            sub = yield from comm.split(color=comm.rank % 2)
            if sub.rank == 0:
                yield from sub.send(("group", comm.rank % 2), dest=1, tag=5)
                return None
            data = yield from sub.recv(source=0, tag=5)
            return data

        results = run(4, prog)
        assert results[2] == ("group", 0)
        assert results[3] == ("group", 1)

    def test_collectives_within_group(self):
        def prog(comm):
            sub = yield from comm.split(color=comm.rank // 4)
            total = yield from sub.allreduce(comm.rank, op="sum")
            return total

        results = run(8, prog)
        assert results[:4] == [0 + 1 + 2 + 3] * 4
        assert results[4:] == [4 + 5 + 6 + 7] * 4

    def test_alltoall_within_group(self):
        def prog(comm):
            sub = yield from comm.split(color=comm.rank % 2)
            blocks = [f"{sub.rank}->{d}" for d in range(sub.size)]
            out = yield from sub.alltoall(blocks)
            return out

        results = run(4, prog)
        for g in (0, 1):
            for local, global_rank in enumerate((g, g + 2)):
                assert results[global_rank] == [f"0->{local}", f"1->{local}"]

    def test_row_column_pattern(self):
        """The classic 2-D decomposition: a 2x2 grid of ranks with row and
        column communicators; row-sum then column-sum = global sum."""
        def prog(comm):
            row = yield from comm.split(color=comm.rank // 2)
            col = yield from comm.split(color=comm.rank % 2)
            row_sum = yield from row.allreduce(comm.rank + 1, op="sum")
            total = yield from col.allreduce(row_sum, op="sum")
            return total

        results = run(4, prog)
        assert results == [1 + 2 + 3 + 4] * 4

    def test_world_traffic_untouched_by_subcomms(self):
        def prog(comm):
            sub = yield from comm.split(color=0)
            if comm.rank == 0:
                yield from comm.send("world-msg", dest=1, tag=9)
                yield from sub.send("sub-msg", dest=1, tag=9)
                return None
            if comm.rank == 1:
                sub_msg = yield from sub.recv(source=0, tag=9)
                world_msg = yield from comm.recv(source=0, tag=9)
                return (sub_msg, world_msg)
            return None

        results = run(2, prog)
        assert results[1] == ("sub-msg", "world-msg")

    def test_nested_split(self):
        def prog(comm):
            half = yield from comm.split(color=comm.rank // 4)
            quarter = yield from half.split(color=half.rank // 2)
            total = yield from quarter.allreduce(1, op="sum")
            return (quarter.size, total)

        results = run(8, prog)
        assert all(r == (2, 2) for r in results)

    def test_compute_charges_global_node(self):
        """A subcomm's compute lands on the member's global processor."""
        def prog(comm):
            sub = yield from comm.split(color=0, key=-comm.rank)  # reversed
            if sub.rank == 0:  # this is global rank 3
                yield from sub.compute(90e6)  # ~1s on the 90 MFLOPS CPU
            yield from comm.barrier()
            return comm.now

        results = run(4, prog)
        assert all(t > 0.9 for t in results)  # everyone waited at the barrier
