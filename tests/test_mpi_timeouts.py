"""MPI fault paths: receive timeouts, truncation, corruption, send retry."""

import numpy as np
import pytest

from repro.faults import FaultPlan
from repro.machine import Environment, SimCluster, cspi
from repro.machine.simulator import Event
from repro.mpi import (
    CorruptionError,
    DeliveryError,
    MpiTimeoutError,
    MpiWorld,
    Request,
    RetryPolicy,
    TruncationError,
)


def make_world(nodes=2, plan=None, **kwargs):
    env = Environment()
    cluster = SimCluster.from_platform(env, cspi(), nodes, fault_plan=plan)
    return MpiWorld(cluster, **kwargs)


class TestRecvTimeout:
    def test_recv_timeout_raises_instead_of_wedging(self):
        world = make_world(2)

        def silent(comm):
            if False:
                yield

        def receiver(comm):
            yield from comm.recv(source=0, timeout=0.01)

        world.spawn_rank(0, silent)
        world.spawn_rank(1, receiver)
        with pytest.raises(MpiTimeoutError,
                           match=r"rank 1: recv\(source=0.*timed out"):
            world.run()

    def test_timeout_is_mpi_and_builtin_timeout_error(self):
        assert issubclass(MpiTimeoutError, TimeoutError)

    def test_deadlocked_pair_raises_with_default_timeout(self):
        """Both ranks receive before sending — the classic deadlock.  A world
        default_timeout converts the wedge into a legible error."""
        world = make_world(2, default_timeout=0.01)

        def prog(comm):
            peer = 1 - comm.rank
            data = yield from comm.recv(source=peer)
            yield from comm.send(comm.rank, dest=peer)
            return data

        world.spawn(prog)
        with pytest.raises(MpiTimeoutError, match="timed out after 0.01s"):
            world.run()

    def test_late_message_survives_a_timed_out_recv(self):
        """After a timeout the pending receive is withdrawn; the message that
        arrives later stays queued for the next receive."""
        world = make_world(2)

        def sender(comm):
            yield from comm.compute(1e9)  # arrive well past the deadline
            yield from comm.send("late", dest=1, tag=5)

        def receiver(comm):
            with pytest.raises(MpiTimeoutError):
                yield from comm.recv(source=0, tag=5, timeout=1e-4)
            data = yield from comm.recv(source=0, tag=5)  # no deadline
            return data

        world.spawn_rank(0, sender)
        world.spawn_rank(1, receiver)
        assert world.run()[1] == "late"

    def test_request_wait_timeout(self):
        world = make_world(2)

        def silent(comm):
            if False:
                yield

        def receiver(comm):
            req = comm.irecv(source=0, tag=1)
            with pytest.raises(MpiTimeoutError, match="did not complete"):
                yield from req.wait(timeout=0.005)
            return "survived"

        world.spawn_rank(0, silent)
        world.spawn_rank(1, receiver)
        assert world.run()[1] == "survived"

    def test_collectives_inherit_default_timeout(self):
        """Collectives are built on recv, so a rank that never joins makes
        the others time out rather than hang forever."""
        world = make_world(4, default_timeout=0.01)

        def prog(comm):
            if comm.rank == 3:
                return "deserter"  # never joins the barrier
            yield from comm.barrier()

        world.spawn(prog)
        with pytest.raises(MpiTimeoutError):
            world.run()


class TestIntegrity:
    def test_truncation_error_on_sized_recv(self):
        world = make_world(2)

        def sender(comm):
            yield from comm.send(np.zeros(1024, dtype=np.float64), dest=1)

        def receiver(comm):
            yield from comm.recv(source=0, max_bytes=512)

        world.spawn_rank(0, sender)
        world.spawn_rank(1, receiver)
        with pytest.raises(TruncationError, match="8192 bytes exceeds"):
            world.run()

    def test_truncation_error_through_irecv_wait(self):
        world = make_world(2)

        def sender(comm):
            yield from comm.send(np.zeros(1024, dtype=np.float64), dest=1)

        def receiver(comm):
            req = comm.irecv(source=0, max_bytes=512)
            try:
                yield from req.wait()
            except TruncationError:
                return "truncated"
            return "oops"

        world.spawn_rank(0, sender)
        world.spawn_rank(1, receiver)
        assert world.run()[1] == "truncated"

    def test_request_test_raises_on_failed_operation(self):
        """MPI_Test semantics: a failed operation surfaces its error at
        test(), not as a value."""
        env = Environment()
        ev = Event(env)
        ev.fail(TruncationError("buffer too small"))
        env.run()
        req = Request(env, ev)
        with pytest.raises(TruncationError, match="buffer too small"):
            req.test()

    def test_request_test_before_completion(self):
        env = Environment()
        req = Request(env, Event(env))
        assert req.test() == (False, None)

    def test_corruption_detected_at_receive(self):
        world = make_world(2, plan=FaultPlan(seed=1).message_corruption(0.999))

        def sender(comm):
            yield from comm.send(np.arange(64), dest=1)

        def receiver(comm):
            yield from comm.recv(source=0)

        world.spawn_rank(0, sender)
        world.spawn_rank(1, receiver)
        with pytest.raises(CorruptionError, match="failed integrity check"):
            world.run()


class TestSendRetry:
    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(factor=0.5)

    def test_retry_delivers_over_lossy_link(self):
        # ~50% loss: 8 attempts make delivery overwhelmingly likely, and the
        # seeded RNG makes this exact run reproducible.
        world = make_world(
            2,
            plan=FaultPlan(seed=3).message_loss(0.5),
            retry_policy=RetryPolicy(max_attempts=8),
        )

        def prog(comm):
            if comm.rank == 0:
                yield from comm.send("payload", dest=1)
                return None
            data = yield from comm.recv(source=0)
            return data

        world.spawn(prog)
        assert world.run()[1] == "payload"

    def test_delivery_error_when_retries_exhausted(self):
        world = make_world(2, plan=FaultPlan(seed=1).message_loss(0.999))

        def sender(comm):
            yield from comm.send("doomed", dest=1, tag=9,
                                 retry=RetryPolicy(max_attempts=3))

        def receiver(comm):
            with pytest.raises(MpiTimeoutError):
                yield from comm.recv(source=0, tag=9, timeout=1.0)

        world.spawn_rank(0, sender)
        world.spawn_rank(1, receiver)
        with pytest.raises(DeliveryError,
                           match="failed after 3 attempt"):
            world.run()

    def test_plain_send_over_lossy_link_is_silent(self):
        """Without a retry policy a lost message is only observable at the
        receiver (via a timeout) — fire-and-forget semantics."""
        world = make_world(2, plan=FaultPlan(seed=1).message_loss(0.999))

        def sender(comm):
            yield from comm.send("void", dest=1)
            return "sent"

        def receiver(comm):
            with pytest.raises(MpiTimeoutError):
                yield from comm.recv(source=0, timeout=0.01)
            return "timed-out"

        world.spawn_rank(0, sender)
        world.spawn_rank(1, receiver)
        assert world.run() == ["sent", "timed-out"]

    def test_split_inherits_timeout_and_retry(self):
        world = make_world(
            4, default_timeout=0.25, retry_policy=RetryPolicy(max_attempts=2)
        )

        def prog(comm):
            sub = yield from comm.split(color=comm.rank % 2)
            return (sub.default_timeout, sub.retry_policy.max_attempts)

        world.spawn(prog)
        assert world.run() == [(0.25, 2)] * 4
