"""ULFM-style MPI fault tolerance: detector-driven failures, revoke, shrink."""

import pytest

from repro.faults import FaultPlan
from repro.machine import Environment, SimCluster, cspi
from repro.mpi import (
    ANY_SOURCE,
    FailureDetector,
    MpiWorld,
    ProcessFailedError,
    RevokedError,
)


def make_world(nodes=4, plan=None, with_detector=True, **kwargs):
    env = Environment()
    cluster = SimCluster.from_platform(env, cspi(), nodes, fault_plan=plan)
    detector = FailureDetector(cluster) if with_detector else None
    return MpiWorld(cluster, detector=detector, **kwargs)


class TestProcessFailed:
    def test_pending_recv_from_dead_rank_fails(self):
        """A recv posted before the peer dies fails at declaration time,
        not at some timeout."""
        plan = FaultPlan().crash_node(3, at=0.001, permanent=True)
        world = make_world(4, plan=plan)

        def waiter(comm):
            with pytest.raises(ProcessFailedError) as err:
                yield from comm.recv(source=3)
            assert err.value.ranks == (3,)
            return "survived"

        def idle(comm):
            if False:
                yield

        world.spawn_rank(0, waiter)
        world.spawn_rank(1, idle)
        world.spawn_rank(2, idle)
        world.spawn_rank(3, idle)
        assert world.run()[0] == "survived"

    def test_send_to_declared_dead_rank_raises(self):
        plan = FaultPlan().crash_node(1, at=0.001, permanent=True)
        world = make_world(3, plan=plan)

        def sender(comm):
            # Outlive the detection window, then try to talk to the corpse.
            yield from comm.world.cluster.node(0).busy(0.002)
            with pytest.raises(ProcessFailedError):
                yield from comm.send("hello", dest=1)
            return "ok"

        def idle(comm):
            if False:
                yield

        world.spawn_rank(0, sender)
        world.spawn_rank(1, idle)
        world.spawn_rank(2, idle)
        assert world.run()[0] == "ok"

    def test_any_source_waits_for_all_senders_to_die(self):
        """recv(ANY_SOURCE) fails only once every possible sender is dead."""
        plan = (FaultPlan()
                .crash_node(1, at=0.001, permanent=True)
                .crash_node(2, at=0.002, permanent=True)
                .crash_node(3, at=0.002, permanent=True))
        world = make_world(4, plan=plan)

        def waiter(comm):
            with pytest.raises(ProcessFailedError) as err:
                yield from comm.recv(source=ANY_SOURCE)
            assert err.value.ranks == (1, 2, 3)
            return comm.world.env.now

        def idle(comm):
            if False:
                yield

        world.spawn_rank(0, waiter)
        for r in (1, 2, 3):
            world.spawn_rank(r, idle)
        failed_at = world.run()[0]
        # Not before the *last* sender could have been declared dead.
        assert failed_at > 0.002

    def test_any_source_still_delivers_from_a_live_sender(self):
        plan = FaultPlan().crash_node(2, at=0.001, permanent=True)
        world = make_world(3, plan=plan)

        def waiter(comm):
            msg = yield from comm.recv(source=ANY_SOURCE)
            return msg

        def sender(comm):
            yield from comm.world.cluster.node(1).busy(0.003)
            yield from comm.send("from the living", dest=0)

        def idle(comm):
            if False:
                yield

        world.spawn_rank(0, waiter)
        world.spawn_rank(1, sender)
        world.spawn_rank(2, idle)
        assert world.run()[0] == "from the living"


class TestRevoke:
    def test_revoke_unblocks_pending_recvs(self):
        world = make_world(2, with_detector=False)

        def victim(comm):
            with pytest.raises(RevokedError):
                yield from comm.recv(source=1)
            return "released"

        def revoker(comm):
            yield from comm.world.cluster.node(1).busy(0.001)
            comm.revoke()
            if False:
                yield

        world.spawn_rank(0, victim)
        world.spawn_rank(1, revoker)
        assert world.run()[0] == "released"

    def test_operations_after_revoke_raise(self):
        world = make_world(2, with_detector=False)

        def prog(comm):
            if comm.rank == 0:
                comm.revoke()
            else:
                yield from comm.world.cluster.node(1).busy(0.001)
            with pytest.raises(RevokedError):
                yield from comm.send(1, dest=1 - comm.rank)
            with pytest.raises(RevokedError):
                yield from comm.recv(source=1 - comm.rank)
            return "done"

        world.spawn(prog)
        assert world.run() == ["done", "done"]


class TestShrink:
    def test_survivors_shrink_and_continue(self):
        """The canonical ULFM recovery: fail -> revoke -> shrink -> carry on."""
        plan = FaultPlan().crash_node(3, at=0.001, permanent=True)
        world = make_world(4, plan=plan)

        def prog(comm):
            if comm.rank == 0:
                try:
                    yield from comm.recv(source=3)
                except ProcessFailedError:
                    comm.revoke()
            else:
                try:
                    yield from comm.recv(source=0, tag=99)
                except RevokedError:
                    pass
            if comm.rank == 3:
                return None
            new_comm = yield from comm.shrink()
            assert new_comm.size == 3
            gathered = yield from new_comm.allgather(new_comm.rank * 10)
            return gathered

        world.spawn(prog)
        results = world.run()
        assert results[3] is None
        assert results[0] == results[1] == results[2] == [0, 10, 20]

    def test_agree_reports_failed_ranks(self):
        plan = FaultPlan().crash_node(2, at=0.001, permanent=True)
        world = make_world(3, plan=plan)

        def prog(comm):
            if comm.rank == 2:
                if False:
                    yield
                return None
            # Wait out detection so the dead rank is known.
            yield from comm.world.cluster.node(comm.rank).busy(0.002)
            agreed, failed = yield from comm.agree(1)
            return agreed, sorted(failed)

        world.spawn(prog)
        results = world.run()
        assert results[0] == (1, [2])
        assert results[1] == (1, [2])

    def test_shrink_is_deterministic(self):
        def run_once():
            plan = FaultPlan(seed=5).crash_node(3, at=0.001, permanent=True)
            world = make_world(4, plan=plan)

            def prog(comm):
                if comm.rank == 3:
                    if False:
                        yield
                    return None
                yield from comm.world.cluster.node(comm.rank).busy(0.002)
                new_comm = yield from comm.shrink()
                return (new_comm.rank, new_comm.size, comm.world.env.now)

            world.spawn(prog)
            return world.run()

        assert run_once() == run_once()
