"""Vendor all-to-all algorithm tests: correctness on every algorithm and the
cost-shape properties the cross-vendor comparison relies on."""

import numpy as np
import pytest

from repro.machine import Environment, SimCluster, cspi, sigi
from repro.mpi import ALGORITHMS, MpiError, MpiWorld, get_algorithm


def run_alltoall(nodes, algorithm, payload_elems=64, platform=None):
    env = Environment()
    world = MpiWorld(SimCluster.from_platform(env, platform or cspi(), nodes))

    def prog(comm):
        blocks = [
            np.full(payload_elems, comm.rank * 100 + d, dtype=np.float32)
            for d in range(comm.size)
        ]
        out = yield from comm.alltoall(blocks, algorithm=algorithm)
        return out

    world.spawn(prog)
    results = world.run()
    return results, world.env.now, world.total_bytes


ALGO_NAMES = sorted(set(ALGORITHMS) - {"bruck"})  # bruck is an alias


@pytest.mark.parametrize("algorithm", ALGO_NAMES)
@pytest.mark.parametrize("nodes", [2, 3, 4, 8])
def test_alltoall_correct_for_all_algorithms(algorithm, nodes):
    results, _, _ = run_alltoall(nodes, algorithm)
    for d, received in enumerate(results):
        for s, block in enumerate(received):
            assert np.all(block == s * 100 + d), (
                f"{algorithm}: rank {d} got wrong block from {s}"
            )


@pytest.mark.parametrize("algorithm", ALGO_NAMES)
def test_alltoall_single_rank(algorithm):
    results, _, _ = run_alltoall(1, algorithm)
    assert np.all(results[0][0] == 0)


def test_bruck_alias():
    assert get_algorithm("bruck") is get_algorithm("recursive_doubling")


def test_unknown_algorithm():
    with pytest.raises(MpiError):
        get_algorithm("telepathy")


def test_bruck_moves_more_bytes_than_pairwise():
    # Bruck bundles blocks through intermediate hops: more total traffic.
    _, _, bytes_pairwise = run_alltoall(8, "pairwise", payload_elems=1024)
    _, _, bytes_bruck = run_alltoall(8, "recursive_doubling", payload_elems=1024)
    assert bytes_bruck > bytes_pairwise


def test_bruck_fewer_messages_wins_at_tiny_payloads():
    # With ~zero payload, per-message overhead dominates: log p rounds beat p-1.
    _, t_pairwise, _ = run_alltoall(8, "pairwise", payload_elems=1)
    _, t_bruck, _ = run_alltoall(8, "recursive_doubling", payload_elems=1)
    assert t_bruck < t_pairwise


def test_pairwise_beats_bruck_at_large_payloads():
    _, t_pairwise, _ = run_alltoall(8, "pairwise", payload_elems=1 << 16)
    _, t_bruck, _ = run_alltoall(8, "recursive_doubling", payload_elems=1 << 16)
    assert t_pairwise < t_bruck


def test_direct_contends_on_shared_medium():
    # On SIGI's 2-channel shared bus, direct flooding is no better than the
    # paced ring (it cannot exploit concurrency that isn't there).
    _, t_direct, _ = run_alltoall(8, "direct", payload_elems=1 << 14, platform=sigi())
    _, t_ring, _ = run_alltoall(8, "ring", payload_elems=1 << 14, platform=sigi())
    assert t_direct >= t_ring * 0.9


def test_alltoall_cost_grows_with_node_count():
    _, t4, _ = run_alltoall(4, "pairwise", payload_elems=1 << 14)
    _, t8, _ = run_alltoall(8, "pairwise", payload_elems=1 << 14)
    assert t8 > t4 * 0.5  # more steps, smaller per-pair payloads


@pytest.mark.parametrize("algorithm", ALGO_NAMES)
def test_alltoall_deterministic(algorithm):
    _, t1, b1 = run_alltoall(4, algorithm, payload_elems=256)
    _, t2, b2 = run_alltoall(4, algorithm, payload_elems=256)
    assert t1 == t2
    assert b1 == b2
