"""Multi-input dataflow tests: functions with several in-ports (binary
kernels), multiple sources, and fan-out (one producer, several consumers)."""

import numpy as np
import pytest

from repro.core.codegen import generate_glue
from repro.core.model import (
    ApplicationModel,
    DataType,
    FunctionBlock,
    REPLICATED,
    round_robin_mapping,
    striped,
)
from repro.core.runtime import SageRuntime
from repro.machine import Environment, SimCluster, cspi

N = 16
MTYPE = DataType("m", "complex64", (N, N))


def run_app(app, nodes, providers):
    """providers: path -> callable(k) (each matrix_source pulls by its path)."""
    glue = generate_glue(app, round_robin_mapping(app, nodes), num_processors=nodes)
    env = Environment()
    cluster = SimCluster.from_platform(env, cspi(), nodes)
    runtime = SageRuntime(glue, cluster)

    # One provider per source function: dispatch on nothing but iteration is
    # ambiguous, so sources carry a 'which' param the provider keys on.
    def provider(k):
        raise AssertionError("unused")

    # Replace the per-context fetch with param-aware dispatch.
    original_make_ctx = runtime._make_ctx

    def make_ctx(entry, thread, iteration):
        ctx = original_make_ctx(entry, thread, iteration)
        which = entry["params"].get("which")
        if which is not None:
            ctx.fetch_input = lambda k: providers[which](k)
        return ctx

    runtime._make_ctx = make_ctx
    return runtime.run(iterations=1, input_provider=provider)


def two_source_app(nodes, kernel="vadd"):
    app = ApplicationModel("twosrc")
    a = app.add_block(FunctionBlock("srca", kernel="matrix_source", threads=nodes,
                                    params={"which": "a"}))
    a.add_out("out", MTYPE, striped(0))
    b = app.add_block(FunctionBlock("srcb", kernel="matrix_source", threads=nodes,
                                    params={"which": "b"}))
    b.add_out("out", MTYPE, striped(0))
    op = app.add_block(FunctionBlock("op", kernel=kernel, threads=nodes))
    op.add_in("a", MTYPE, striped(0))
    op.add_in("b", MTYPE, striped(0))
    op.add_out("out", MTYPE, striped(0))
    sink = app.add_block(FunctionBlock("sink", kernel="matrix_sink", threads=nodes))
    sink.add_in("in", MTYPE, striped(0))
    app.connect(a.port("out"), op.port("a"))
    app.connect(b.port("out"), op.port("b"))
    app.connect(op.port("out"), sink.port("in"))
    return app


@pytest.fixture
def matrices():
    rng = np.random.default_rng(5)
    a = (rng.standard_normal((N, N)) + 1j * rng.standard_normal((N, N))).astype("complex64")
    b = (rng.standard_normal((N, N)) + 1j * rng.standard_normal((N, N))).astype("complex64")
    return a, b


@pytest.mark.parametrize("nodes", [1, 2, 4])
def test_vadd_two_sources(nodes, matrices):
    a, b = matrices
    app = two_source_app(nodes, "vadd")
    result = run_app(app, nodes, {"a": lambda k: a, "b": lambda k: b})
    np.testing.assert_allclose(result.full_result(0), a + b, atol=1e-5)


def test_vmul_two_sources(matrices):
    a, b = matrices
    app = two_source_app(2, "vmul")
    result = run_app(app, 2, {"a": lambda k: a, "b": lambda k: b})
    np.testing.assert_allclose(result.full_result(0), a * b, atol=1e-4)


def test_mismatched_stripe_axes_still_correct(matrices):
    """Source B striped on the other axis: the runtime must redistribute
    before the add."""
    a, b = matrices
    app = ApplicationModel("mixed")
    sa = app.add_block(FunctionBlock("srca", kernel="matrix_source", threads=2,
                                     params={"which": "a"}))
    sa.add_out("out", MTYPE, striped(0))
    sb = app.add_block(FunctionBlock("srcb", kernel="matrix_source", threads=2,
                                     params={"which": "b"}))
    sb.add_out("out", MTYPE, striped(1))  # column blocks!
    op = app.add_block(FunctionBlock("op", kernel="vadd", threads=2))
    op.add_in("a", MTYPE, striped(0))
    op.add_in("b", MTYPE, striped(0))  # forces redistribution of srcb's data
    op.add_out("out", MTYPE, striped(0))
    sink = app.add_block(FunctionBlock("sink", kernel="matrix_sink"))
    sink.add_in("in", MTYPE, REPLICATED)
    app.connect(sa.port("out"), op.port("a"))
    app.connect(sb.port("out"), op.port("b"))
    app.connect(op.port("out"), sink.port("in"))
    result = run_app(app, 2, {"a": lambda k: a, "b": lambda k: b})
    np.testing.assert_allclose(result.full_result(0), a + b, atol=1e-5)


def test_fan_out_one_producer_two_consumers(matrices):
    """One source feeding two sinks through separate arcs."""
    a, _ = matrices
    app = ApplicationModel("fanout")
    src = app.add_block(FunctionBlock("src", kernel="matrix_source", threads=2,
                                      params={"which": "a"}))
    src.add_out("out", MTYPE, striped(0))
    id1 = app.add_block(FunctionBlock("id1", kernel="identity", threads=2))
    id1.add_in("in", MTYPE, striped(0))
    id1.add_out("out", MTYPE, striped(0))
    id2 = app.add_block(FunctionBlock("id2", kernel="identity", threads=2))
    id2.add_in("in", MTYPE, striped(1))
    id2.add_out("out", MTYPE, striped(1))
    s1 = app.add_block(FunctionBlock("s1", kernel="matrix_sink"))
    s1.add_in("in", MTYPE, REPLICATED)
    s2 = app.add_block(FunctionBlock("s2", kernel="matrix_sink"))
    s2.add_in("in", MTYPE, REPLICATED)
    # NOTE: two arcs from the same OUT port
    app.connect(src.port("out"), id1.port("in"))
    app.connect(src.port("out"), id2.port("in"))
    app.connect(id1.port("out"), s1.port("in"))
    app.connect(id2.port("out"), s2.port("in"))
    result = run_app(app, 2, {"a": lambda k: a})
    pieces = result.sink_results[0]
    assert len(pieces) == 2  # both sinks delivered
    for _region, data in pieces:
        np.testing.assert_allclose(np.asarray(data), a, atol=1e-6)
