"""Unit tests for the repro.perf layer: keyed caches, the timer/counter
registry, the bench CLI, and the baseline-regression comparator."""

import json

import pytest

from repro.perf import (
    KeyedCache,
    PerfRegistry,
    cache_stats,
    clear_all_caches,
    named_cache,
)
from repro.perf.bench import BASELINE, compare_to_baseline, compute_speedups, main


# ---------------------------------------------------------------------------
# KeyedCache / named_cache


def test_keyed_cache_hit_miss_accounting():
    cache = KeyedCache("t", maxsize=8)
    calls = []
    assert cache.get("a", lambda: calls.append(1) or 41) == 41
    assert cache.get("a", lambda: calls.append(1) or 99) == 41  # hit, no compute
    assert calls == [1]
    assert cache.hits == 1 and cache.misses == 1
    assert "a" in cache and len(cache) == 1
    assert cache.stats() == {"hits": 1, "misses": 1, "size": 1}


def test_keyed_cache_lookup_and_put():
    cache = KeyedCache("t")
    assert cache.lookup("k") is None
    assert cache.misses == 1
    cache.put("k", "v")
    assert cache.lookup("k") == "v"
    assert cache.hits == 1


def test_keyed_cache_fifo_eviction_is_bounded():
    cache = KeyedCache("t", maxsize=3)
    for i in range(10):
        cache.get(i, lambda i=i: i * 2)
    assert len(cache) == 3
    # oldest keys evicted, newest survive
    assert 9 in cache and 0 not in cache


def test_keyed_cache_clear():
    cache = KeyedCache("t")
    cache.put("k", 1)
    cache.clear()
    assert len(cache) == 0 and "k" not in cache


def test_named_cache_is_process_wide_singleton():
    a = named_cache("test.perf.singleton")
    b = named_cache("test.perf.singleton")
    assert a is b
    a.put("x", 1)
    try:
        assert "test.perf.singleton" in cache_stats()
        evicted = clear_all_caches()
        assert evicted >= 1
        assert len(a) == 0
    finally:
        a.clear()


def test_hot_path_caches_are_registered():
    # Every caching layer documented in docs/PERFORMANCE.md must exist once
    # its module is imported.
    import repro.core.codegen.generator  # noqa: F401
    import repro.core.runtime.striping  # noqa: F401
    import repro.mpi.vendor  # noqa: F401
    from repro.core.alter.parser import parse_cached

    parse_cached("1")  # the alter.parse cache registers on first use
    names = set(cache_stats())
    assert {
        "striping.thread_region",
        "striping.message_plan",
        "codegen.glue_source",
        "codegen.glue_code",
        "alter.parse",
        "mpi.alltoall_schedule",
    } <= names


# ---------------------------------------------------------------------------
# PerfRegistry


def test_registry_timer_context_manager():
    reg = PerfRegistry()
    with reg.timer("stage") as t:
        pass
    assert t.elapsed is not None and t.elapsed >= 0.0
    stats = reg.timers["stage"]
    assert stats.count == 1
    assert stats.total == t.elapsed


def test_registry_timer_aggregates():
    reg = PerfRegistry()
    for elapsed in (0.5, 0.1, 0.4):
        reg.record("s", elapsed)
    stats = reg.timers["s"]
    assert stats.count == 3
    assert stats.total == pytest.approx(1.0)
    assert stats.mean == pytest.approx(1.0 / 3)
    assert stats.min == 0.1 and stats.max == 0.5
    d = stats.as_dict()
    assert d["count"] == 3 and d["min_s"] == 0.1


def test_registry_counters_and_snapshot_and_reset():
    reg = PerfRegistry()
    assert reg.count("events") == 1
    assert reg.count("events", 41) == 42
    reg.record("t", 0.25)
    snap = reg.snapshot()
    assert snap["counters"] == {"events": 42}
    assert snap["timers"]["t"]["count"] == 1
    json.dumps(snap)  # snapshot must be JSON-serialisable as-is
    reg.reset()
    assert reg.snapshot() == {"timers": {}, "counters": {}}


# ---------------------------------------------------------------------------
# baseline comparison (pure function — no measurement in CI)


def _figures(eps, nevents=100):
    return {"events_per_sec_total": eps, "nevents": nevents}


def test_compare_to_baseline_flags_large_regression():
    baseline = {"fft2d@4": _figures(100000.0)}
    current = {"fft2d@4": _figures(70000.0)}  # 30% down > 20% threshold
    regressions = compare_to_baseline(current, baseline, threshold=0.2)
    assert len(regressions) == 1
    assert regressions[0]["config"] == "fft2d@4"
    assert regressions[0]["kind"] == "events_per_sec_total"
    assert regressions[0]["ratio"] == pytest.approx(0.7)


def test_compare_to_baseline_accepts_small_wobble_and_speedups():
    baseline = {"a@1": _figures(100000.0), "b@2": _figures(50000.0)}
    current = {"a@1": _figures(85000.0), "b@2": _figures(200000.0)}
    assert compare_to_baseline(current, baseline, threshold=0.2) == []


def test_compare_to_baseline_flags_event_count_mismatch():
    baseline = {"a@1": _figures(100000.0, nevents=1526)}
    current = {"a@1": _figures(500000.0, nevents=900)}  # fast but wrong workload
    regressions = compare_to_baseline(current, baseline)
    assert regressions == [
        {"config": "a@1", "kind": "nevents", "current": 900, "baseline": 1526}
    ]


def test_compare_ignores_configs_missing_from_either_side():
    assert compare_to_baseline({"x@1": _figures(1.0)}, {"y@1": _figures(1.0)}) == []


def test_compute_speedups():
    baseline = {"a@1": _figures(100000.0)}
    current = {"a@1": _figures(250000.0), "only_current@4": _figures(1.0)}
    speedups = compute_speedups(current, baseline)
    assert set(speedups) == {"a@1"}
    assert speedups["a@1"]["events_per_sec_total"] == pytest.approx(2.5)
    assert speedups["a@1"]["nevents_match"] == 1.0


def test_embedded_baseline_shape():
    # the embedded baseline must stay structurally valid for the comparator
    for key, figures in BASELINE.items():
        app, nodes = key.split("@")
        assert app in ("fft2d", "corner_turn") and int(nodes) in (1, 2, 4, 8)
        assert figures["events_per_sec_total"] > 0
        assert figures["nevents"] > 0
        assert figures["total"] >= figures["simulate"] > 0


# ---------------------------------------------------------------------------
# bench CLI smoke test (tiny workload, wall-clock — no thresholds asserted)


def test_bench_cli_smoke(tmp_path):
    out = tmp_path / "BENCH_test.json"
    rc = main([
        "--apps", "fft2d",
        "--nodes", "1",
        "--size", "32",
        "--iterations", "2",
        "--repeats", "1",
        "--warmups", "0",
        "-o", str(out),
    ])
    assert rc == 0
    report = json.loads(out.read_text())
    assert "fft2d@1" in report["results"]
    figures = report["results"]["fft2d@1"]
    assert figures["nevents"] > 0
    assert figures["events_per_sec_total"] > 0
    assert figures["total"] > 0
    # size 32 != baseline's 256: the comparison must be declared void, not
    # silently computed against a different workload
    assert report["baseline_comparable"] is False
    assert "speedup" not in report and "regressions" not in report
    assert report["baseline"]["results"] == BASELINE
    assert report["registry"]["counters"]["bench.passes"] == 1


def test_bench_cli_emit_baseline(tmp_path, capsys):
    rc = main([
        "--apps", "corner_turn",
        "--nodes", "1",
        "--size", "32",
        "--iterations", "1",
        "--repeats", "1",
        "--warmups", "0",
        "--emit-baseline",
    ])
    assert rc == 0
    results = json.loads(capsys.readouterr().out)
    assert "corner_turn@1" in results
