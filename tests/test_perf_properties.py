"""Property tests guarding the fast-path caches and collective schedules.

Two families:

* The four all-to-all algorithms are interchangeable: for randomized node
  counts and payload shapes every algorithm must deliver exactly the same
  blocks to every rank (the cached partner schedules in
  :mod:`repro.mpi.vendor` only change *when* messages move, never *what*
  arrives where).
* The memoized striping helpers (:func:`thread_region` /
  :func:`message_plan`) must be observationally identical to their uncached
  originals for arbitrary shapes, stripings, and thread counts — a stale or
  mis-keyed cache entry would show up as a divergence here.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import REPLICATED, cyclic, striped
from repro.core.runtime.striping import (
    compute_message_plan,
    compute_thread_region,
    message_plan,
    thread_region,
)
from repro.machine import Environment, SimCluster, cspi
from repro.mpi import MpiWorld
from repro.mpi.vendor import ALGORITHMS, partner_schedule

# ---------------------------------------------------------------------------
# all-to-all payload equivalence

_ALGOS = sorted(ALGORITHMS)


def _run_alltoall(nodes, algorithm, elems, seed):
    rng = np.random.default_rng(seed)
    payloads = {
        (src, dst): rng.integers(0, 1000, size=elems).astype(np.int32)
        for src in range(nodes)
        for dst in range(nodes)
    }

    def prog(comm):
        blocks = [payloads[(comm.rank, dst)] for dst in range(comm.size)]
        out = yield from comm.alltoall(blocks, algorithm=algorithm)
        return out

    env = Environment()
    world = MpiWorld(SimCluster.from_platform(env, cspi(), nodes))
    world.spawn(prog)
    return world.run()


@settings(max_examples=20, deadline=None)
@given(
    nodes=st.sampled_from([1, 2, 3, 4, 5, 8]),
    elems=st.integers(1, 64),
    seed=st.integers(0, 2**31 - 1),
)
def test_all_alltoall_algorithms_deliver_identical_payloads(nodes, elems, seed):
    reference = None
    for algorithm in _ALGOS:
        results = _run_alltoall(nodes, algorithm, elems, seed)
        # rank r's slot s must hold exactly what rank s addressed to rank r
        as_arrays = [[np.asarray(blk) for blk in out] for out in results]
        if reference is None:
            reference = as_arrays
            # self-check against the ground truth payload matrix once
            rng = np.random.default_rng(seed)
            truth = {
                (src, dst): rng.integers(0, 1000, size=elems).astype(np.int32)
                for src in range(nodes)
                for dst in range(nodes)
            }
            for dst in range(nodes):
                for src in range(nodes):
                    assert np.array_equal(as_arrays[dst][src], truth[(src, dst)])
        else:
            for dst in range(nodes):
                for src in range(nodes):
                    assert np.array_equal(
                        as_arrays[dst][src], reference[dst][src]
                    ), f"{algorithm}: rank {dst} slot {src} diverged"


@settings(max_examples=50, deadline=None)
@given(
    algorithm=st.sampled_from(["pairwise", "ring", "bruck"]),
    size=st.integers(1, 16),
    seed=st.integers(0, 2**31 - 1),
)
def test_partner_schedule_cached_equals_recomputed(algorithm, size, seed):
    rank = seed % size
    first = partner_schedule(algorithm, size, rank)
    again = partner_schedule(algorithm, size, rank)
    assert first == again
    assert first is again  # same cached tuple, not a rebuilt equal one
    # pairwise/ring schedules visit every peer exactly once
    if algorithm in ("pairwise", "ring"):
        assert sorted(dst for dst, _src in first) == [
            r for r in range(size) if r != rank
        ]
        assert sorted(src for _dst, src in first) == [
            r for r in range(size) if r != rank
        ]


# ---------------------------------------------------------------------------
# striping caches vs. fresh computation

_shapes = st.tuples(st.integers(1, 64), st.integers(1, 64))
_stripings = st.one_of(
    st.just(REPLICATED),
    st.builds(striped, st.integers(0, 1)),
    st.builds(cyclic, st.integers(0, 1), block=st.integers(1, 8)),
)


@settings(max_examples=100, deadline=None)
@given(shape=_shapes, striping=_stripings, threads=st.integers(1, 9), data=st.data())
def test_thread_region_cache_matches_fresh_compute(shape, striping, threads, data):
    t = data.draw(st.integers(0, threads - 1))
    assert thread_region(shape, striping, threads, t) == compute_thread_region(
        shape, striping, threads, t
    )


@settings(max_examples=60, deadline=None)
@given(
    shape=_shapes,
    elem_bytes=st.sampled_from([1, 4, 8]),
    src_striping=_stripings,
    src_threads=st.integers(1, 6),
    dst_striping=_stripings,
    dst_threads=st.integers(1, 6),
)
def test_message_plan_cache_matches_fresh_compute(
    shape, elem_bytes, src_striping, src_threads, dst_striping, dst_threads
):
    cached = message_plan(
        shape, elem_bytes, src_striping, src_threads, dst_striping, dst_threads
    )
    fresh = compute_message_plan(
        shape, elem_bytes, src_striping, src_threads, dst_striping, dst_threads
    )
    assert cached == fresh
    # the cache hands out a fresh list each call: callers may reorder it
    # without corrupting the shared entry
    second = message_plan(
        shape, elem_bytes, src_striping, src_threads, dst_striping, dst_threads
    )
    assert second is not cached
    assert second == cached
