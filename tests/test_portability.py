"""§4 portability claim tests.

*"since the current SAGE tool makes the target system transparent to the
engineer, the application developed is portable to other SAGE supported
hardware platforms. The designer simply needs to re-generate the glue code
for the new hardware platform."*

One model, four platforms: identical numerics everywhere, different
modeled performance, no model changes.
"""

import numpy as np
import pytest

from repro.apps import MatrixProvider, benchmark_mapping, corner_turn_model, fft2d_model
from repro.core.codegen import generate_glue
from repro.core.runtime import DEFAULT_CONFIG, SageRuntime
from repro.machine import Environment, PLATFORMS, SimCluster, get_platform

N, NODES = 32, 4


def run_on(platform_name, app, provider=None, config=None):
    glue = generate_glue(app, benchmark_mapping(app, NODES), num_processors=NODES)
    env = Environment()
    cluster = SimCluster.from_platform(env, get_platform(platform_name), NODES)
    runtime = SageRuntime(glue, cluster, config=config or DEFAULT_CONFIG)
    return runtime.run(iterations=1, input_provider=provider)


@pytest.mark.parametrize("platform", sorted(PLATFORMS))
def test_same_model_correct_on_every_platform(platform):
    provider = MatrixProvider(N, seed=6)
    app = fft2d_model(N, NODES)
    result = run_on(platform, app, provider)
    np.testing.assert_allclose(
        result.full_result(0), np.fft.fft2(provider(0)), atol=1e-1
    )


def test_glue_is_platform_independent():
    """The glue encodes the model + mapping, not the machine: regeneration
    for a new platform yields the same source (§4: 'simply ... re-generate'
    — and in this architecture, reuse directly)."""
    app = corner_turn_model(N, NODES)
    glue = generate_glue(app, benchmark_mapping(app, NODES), num_processors=NODES)
    again = generate_glue(app, benchmark_mapping(app, NODES), num_processors=NODES)
    assert glue.source == again.source


def test_performance_differs_results_do_not():
    provider = MatrixProvider(N, seed=9)
    app = corner_turn_model(N, NODES)
    results = {p: run_on(p, app, provider) for p in sorted(PLATFORMS)}
    # identical data everywhere
    reference = results["cspi"].full_result(0)
    for _p, r in results.items():
        np.testing.assert_array_equal(r.full_result(0), reference)
    # but the modeled latencies reflect each machine
    latencies = {p: r.mean_latency for p, r in results.items()}
    assert len(set(latencies.values())) == len(latencies)
    # and the fastest fabric is not the slowest bus
    assert latencies["sigi"] > min(latencies.values())
