"""SageProject facade tests: the full lifecycle through one object."""

import numpy as np
import pytest

from repro import SageProject
from repro.apps import MatrixProvider, corner_turn_model, fft2d_model
from repro.core.atot import GaConfig
from repro.core.model import (
    ApplicationModel,
    FunctionBlock,
    ModelError,
    cspi_hardware,
    round_robin_mapping,
)
from repro.core.runtime import DEFAULT_CONFIG

FAST_GA = GaConfig(population=16, generations=4, seed=1)


class TestLifecycle:
    def test_full_pipeline(self):
        n, nodes = 32, 2
        project = SageProject(fft2d_model(n, nodes), platform="cspi", nodes=nodes)
        project.validate()
        atot = project.optimize(ga_config=FAST_GA)
        assert atot.mapping is project.mapping
        glue = project.generate()
        assert glue.num_processors == nodes
        provider = MatrixProvider(n, seed=1)
        result = project.execute(iterations=2, input_provider=provider)
        np.testing.assert_allclose(
            result.full_result(0), np.fft.fft2(provider(0)), atol=1e-1
        )
        report = project.report()
        assert "rowfft" in report
        assert project.summary()["iterations"] == 2

    def test_execute_without_generate_autogenerates(self):
        project = SageProject(corner_turn_model(32, 2), nodes=2)
        result = project.execute(iterations=1, config=DEFAULT_CONFIG.timing_only())
        assert result.mean_latency > 0
        assert project.glue is not None
        assert project.mapping == round_robin_mapping(project.app, 2)

    def test_execute_without_provider_switches_to_timing(self):
        project = SageProject(corner_turn_model(32, 2), nodes=2)
        result = project.execute(iterations=1)
        assert result.full_result(0) is None  # phantom mode

    def test_new_mapping_invalidates_glue(self):
        project = SageProject(corner_turn_model(32, 2), nodes=2)
        project.generate()
        assert project.glue is not None
        project.optimize(ga_config=FAST_GA)
        assert project.glue is None

    def test_use_explicit_mapping(self):
        app = corner_turn_model(32, 2)
        project = SageProject(app, nodes=2)
        mapping = round_robin_mapping(app, 2)
        project.use_mapping(mapping)
        assert project.mapping is mapping
        bad = round_robin_mapping(app, 2)
        bad.assign(0, 0, 7)  # processor 7 does not exist on a 2-node machine
        with pytest.raises(ModelError):
            project.use_mapping(bad)

    def test_report_before_execute_raises(self):
        project = SageProject(corner_turn_model(32, 2), nodes=2)
        with pytest.raises(ModelError, match="execute"):
            project.report()
        with pytest.raises(ModelError, match="execute"):
            project.summary()

    def test_validate_catches_bad_model(self):
        app = ApplicationModel("bad")
        blk = app.add_block(FunctionBlock("b", kernel="k"))
        from repro.core.model import DataType

        blk.add_in("in", DataType("m", "complex64", (4, 4)))
        with pytest.raises(ModelError):
            SageProject(app, nodes=2).validate()

    def test_nodes_required_without_hardware(self):
        with pytest.raises(ModelError, match="nodes"):
            SageProject(corner_turn_model(32, 2))


class TestProjectPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        n, nodes = 32, 2
        path = str(tmp_path / "proj.json")
        project = SageProject(fft2d_model(n, nodes), nodes=nodes)
        project.optimize(ga_config=FAST_GA)
        project.save(path)

        restored = SageProject.load(path)
        assert restored.nodes == nodes
        assert restored.mapping == project.mapping
        g1 = project.generate()
        g2 = restored.generate()
        assert g1.source == g2.source

    def test_load_rejects_design_without_hardware(self, tmp_path):
        from repro.core.model import save_design

        path = str(tmp_path / "no_hw.json")
        save_design(path, fft2d_model(32, 2))
        with pytest.raises(ModelError, match="no hardware"):
            SageProject.load(path)

    def test_explicit_hardware_model(self):
        hw = cspi_hardware(nodes=4)
        project = SageProject(fft2d_model(32, 4), hardware=hw)
        assert project.nodes == 4
        result = project.execute(iterations=1)
        assert result.makespan > 0


class TestProjectHtmlReport:
    def test_html_report_written(self, tmp_path):
        project = SageProject(corner_turn_model(32, 2), nodes=2)
        project.execute(iterations=1)
        path = str(tmp_path / "report.html")
        doc = project.html_report(path)
        assert doc.startswith("<!DOCTYPE html>")
        assert open(path).read() == doc
        assert "turn" in doc

    def test_html_report_before_execute_raises(self):
        project = SageProject(corner_turn_model(32, 2), nodes=2)
        with pytest.raises(ModelError):
            project.html_report()


class TestProjectOptimizedGlue:
    def test_optimize_buffers_flag_flows_through(self):
        project = SageProject(corner_turn_model(256, 4), nodes=4)
        project.generate(optimize_buffers=False)
        r_default = project.execute(iterations=2)
        optimized = project.generate(optimize_buffers=True)
        r_opt = project.execute(iterations=2)
        assert optimized.optimize_buffers
        assert r_opt.mean_latency < r_default.mean_latency
