"""End-to-end radar-kernel runtime tests + visualizer export tests."""

import csv
import io
import json

import numpy as np
import pytest

from repro.core.atot import GaConfig, optimize_mapping
from repro.core.codegen import generate_glue
from repro.core.model import (
    ApplicationModel,
    DataType,
    FunctionBlock,
    round_robin_mapping,
    software_shelf,
    striped,
)
from repro.core.runtime import DEFAULT_CONFIG, SageRuntime
from repro.core.visualizer import run_summary, trace_to_csv, trace_to_json
from repro.kernels import cfar_detect, chirp_waveform, doppler_process, pulse_compress_rows
from repro.machine import Environment, SimCluster, cspi

PULSES, RANGES = 32, 32


def make_cpi(targets, noise=0.02, seed=0):
    rng = np.random.default_rng(seed)
    wf = chirp_waveform(RANGES)
    cpi = noise * (rng.standard_normal((PULSES, RANGES))
                   + 1j * rng.standard_normal((PULSES, RANGES)))
    for rng_gate, dop_bin in targets:
        doppler = np.exp(2j * np.pi * dop_bin * np.arange(PULSES) / PULSES)
        cpi += 0.5 * doppler[:, None] * np.roll(wf, rng_gate)[None, :]
    return cpi.astype(np.complex64)


def radar_model(nodes):
    t_c = DataType("cpi", "complex64", (PULSES, RANGES))
    t_f = DataType("det", "float32", (PULSES, RANGES))
    app = ApplicationModel("radar")
    src = app.add_block(FunctionBlock("adc", kernel="matrix_source", threads=nodes))
    src.add_out("out", t_c, striped(0))
    pc = app.add_block(FunctionBlock("pc", kernel="pulse_compress", threads=nodes))
    pc.add_in("in", t_c, striped(0))
    pc.add_out("out", t_c, striped(0))
    dop = app.add_block(FunctionBlock("dop", kernel="doppler", threads=nodes,
                                      params={"window": "none"}))
    dop.add_in("in", t_c, striped(1))
    dop.add_out("out", t_c, striped(1))
    det = app.add_block(FunctionBlock("det", kernel="cfar", threads=nodes,
                                      params={"scale": 16.0}))
    det.add_in("in", t_c, striped(0))
    det.add_out("out", t_f, striped(0))
    sink = app.add_block(FunctionBlock("sink", kernel="matrix_sink", threads=nodes))
    sink.add_in("in", t_f, striped(0))
    app.connect(src.port("out"), pc.port("in"))
    app.connect(pc.port("out"), dop.port("in"))
    app.connect(dop.port("out"), det.port("in"))
    app.connect(det.port("out"), sink.port("in"))
    return app


def run_radar(nodes, cpi):
    app = radar_model(nodes)
    glue = generate_glue(app, round_robin_mapping(app, nodes), num_processors=nodes)
    env = Environment()
    cluster = SimCluster.from_platform(env, cspi(), nodes)
    runtime = SageRuntime(glue, cluster)
    return runtime.run(iterations=1, input_provider=lambda k: cpi)


class TestRadarChainEndToEnd:
    @pytest.mark.parametrize("nodes", [1, 2, 4])
    def test_distributed_matches_sequential_reference(self, nodes):
        """The SAGE-distributed chain must equal the plain-numpy chain."""
        targets = [(9, 5)]
        cpi = make_cpi(targets)
        result = run_radar(nodes, cpi)
        got = result.full_result(0)

        wf = chirp_waveform(RANGES)
        ref = pulse_compress_rows(np.asarray(cpi, dtype=np.complex128), wf)
        ref = doppler_process(ref)
        ref = cfar_detect(ref, scale=16.0).astype(np.float32)
        np.testing.assert_allclose(got, ref, atol=1e-6)

    def test_detects_planted_target(self):
        targets = [(9, 5), (25, 20)]
        result = run_radar(4, make_cpi(targets))
        det = result.full_result(0) > 0.5
        for rng_gate, dop_bin in targets:
            assert det[dop_bin, rng_gate], f"missed ({dop_bin}, {rng_gate})"

    def test_quiet_cpi_no_detections(self):
        result = run_radar(2, make_cpi([], noise=0.02))
        assert result.full_result(0).sum() <= 2  # at most stray false alarms

    def test_radar_kernels_on_shelf(self):
        shelf = software_shelf()
        for name in ("pulse_compress", "doppler", "cfar", "window_rows"):
            assert name in shelf
        blk = shelf.take("doppler", "d1", threads=2, window="hamming")
        assert blk.kernel == "doppler"
        assert blk.params == {"window": "hamming"}

    def test_timing_mode_runs_radar_chain(self):
        app = radar_model(4)
        glue = generate_glue(app, round_robin_mapping(app, 4), num_processors=4)
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), 4)
        runtime = SageRuntime(glue, cluster, config=DEFAULT_CONFIG.timing_only())
        result = runtime.run(iterations=3)
        assert result.mean_latency > 0

    def test_atot_maps_radar_chain(self):
        app = radar_model(4)
        atot = optimize_mapping(app, cspi(), 4,
                                config=GaConfig(population=20, generations=5, seed=1))
        atot.mapping.validate(app, processor_count=4)


class TestVisualizerExport:
    @pytest.fixture(scope="class")
    def result(self):
        return run_radar(2, make_cpi([(9, 5)]))

    def test_csv_has_all_events(self, result):
        text = trace_to_csv(result.trace)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][0] == "time"
        assert len(rows) - 1 == len(result.trace)

    def test_csv_writes_to_stream(self, result):
        buf = io.StringIO()
        trace_to_csv(result.trace, buf)
        assert buf.getvalue().startswith("time,")

    def test_json_roundtrips(self, result):
        doc = json.loads(trace_to_json(result.trace))
        assert doc["count"] == len(result.trace)
        kinds = {e["kind"] for e in doc["events"]}
        assert {"enter", "exit", "send", "arrive"} <= kinds

    def test_run_summary_fields(self, result):
        s = run_summary(result, processors=2)
        assert s["iterations"] == 1
        assert s["mean_latency_s"] > 0
        assert len(s["utilization"]) == 2
        assert "pc" in s["function_busy_s"]
        assert json.dumps(s)  # JSON-able
