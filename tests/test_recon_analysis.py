"""Reconfiguration-safety analyzer tests: every seeded-bad transition is
caught by exactly the intended RECON rule, and the transitions the planners
produce for the real apps check clean — all symbolically, before any
reconfiguration is executed."""

import pytest

from tests.analysis_corpus import RECON_CLEAN, RECON_SEEDS
from repro.analysis import (
    check_transition,
    plan_grow_transition,
    plan_migration_transition,
    plan_shrink_transition,
)
from repro.apps.models import corner_turn_model, fft2d_model
from repro.core.model import round_robin_mapping


class TestSeededTransitions:
    @pytest.mark.parametrize(
        "name,factory,rule", RECON_SEEDS, ids=[s[0] for s in RECON_SEEDS]
    )
    def test_seed_triggers_exactly_its_rule(self, name, factory, rule):
        app, transition, nprocs = factory()
        findings = check_transition(app, transition, nprocs)
        rules = sorted({f.rule for f in findings})
        assert rules == [rule], (
            f"seed {name!r} wanted exactly [{rule}], got "
            f"{[f.render() for f in findings]}"
        )

    def test_findings_carry_the_recon_source(self):
        for name, factory, _rule in RECON_SEEDS:
            app, transition, nprocs = factory()
            for f in check_transition(app, transition, nprocs):
                assert f.source == "recon-safety", (name, f.render())

    def test_lost_checkpoint_names_the_dropped_region(self):
        _, factory, _ = next(s for s in RECON_SEEDS if s[0] == "lost-checkpoint")
        app, transition, nprocs = factory()
        (finding,) = [
            f for f in check_transition(app, transition, nprocs)
            if f.rule == "RECON004"
        ]
        assert "missing" in finding.message
        assert finding.severity == "error"


class TestCleanTransitions:
    @pytest.mark.parametrize(
        "name,factory", RECON_CLEAN, ids=[s[0] for s in RECON_CLEAN]
    )
    def test_planned_transition_is_clean(self, name, factory):
        app, transition, nprocs = factory()
        findings = check_transition(app, transition, nprocs)
        assert not findings, [f.render() for f in findings]

    @pytest.mark.parametrize("build", [fft2d_model, corner_turn_model],
                             ids=["fft2d", "cornerturn"])
    @pytest.mark.parametrize("nodes,survivors", [(4, [0, 1, 2]),
                                                 (4, [1, 3]),
                                                 (8, [0, 2, 4, 6])])
    def test_app_shrink_plans_check_clean(self, build, nodes, survivors):
        app = build(64, nodes=nodes)
        mapping = round_robin_mapping(app, nodes)
        transition = plan_shrink_transition(app, mapping, survivors)
        findings = check_transition(app, transition, nodes)
        assert not findings, [f.render() for f in findings]

    @pytest.mark.parametrize("build", [fft2d_model, corner_turn_model],
                             ids=["fft2d", "cornerturn"])
    def test_shrink_grow_round_trip_checks_clean(self, build):
        app = build(64, nodes=4)
        mapping = round_robin_mapping(app, 4)
        shrunk = plan_shrink_transition(app, mapping, survivors=[0, 1, 2])
        grown = plan_grow_transition(app, shrunk.after, mapping, {3: 3})
        assert not check_transition(app, shrunk, 4)
        assert not check_transition(app, grown, 4)
        # the round trip restores the original placement exactly
        for inst in app.function_instances():
            for t in range(inst.threads):
                assert grown.after.processor_of(inst.function_id, t) == \
                    mapping.processor_of(inst.function_id, t)

    def test_migration_of_every_thread_checks_clean(self):
        app = fft2d_model(64, nodes=4)
        mapping = round_robin_mapping(app, 4)
        moves = {}
        for inst in app.function_instances():
            for t in range(inst.threads):
                fid = inst.function_id
                moves[(fid, t)] = (mapping.processor_of(fid, t) + 1) % 4
        transition = plan_migration_transition(app, mapping, moves)
        findings = check_transition(app, transition, 4)
        assert not findings, [f.render() for f in findings]


class TestTransitionPlans:
    def test_shrink_transfers_only_leave_dead_nodes(self):
        app = fft2d_model(64, nodes=4)
        mapping = round_robin_mapping(app, 4)
        transition = plan_shrink_transition(app, mapping, survivors=[0, 1, 2])
        assert transition.kind == "shrink"
        assert transition.transfers, "a shrink off node 3 must ship state"
        for _src, dst, nbytes, _label in transition.transfers:
            assert dst in transition.active
            assert nbytes > 0

    def test_describe_mentions_kind_and_width(self):
        app = fft2d_model(64, nodes=4)
        mapping = round_robin_mapping(app, 4)
        transition = plan_shrink_transition(app, mapping, survivors=[0, 1])
        text = transition.describe()
        assert "shrink" in text
