"""Run-time fault tolerance: fail_fast, retry, and checkpoint_restart."""

import numpy as np
import pytest

from repro.apps import MatrixProvider, benchmark_mapping, corner_turn_model
from repro.core.codegen import generate_glue
from repro.core.runtime import (
    DEFAULT_CONFIG,
    KernelBinding,
    SageRuntime,
    RuntimeError_,
)
from repro.faults import (
    FaultPlan,
    FaultPolicy,
    NodeFailure,
    TransientError,
    TransportError,
)
from repro.machine import Environment, SimCluster, cspi

N = 16
NODES = 2


def make_runtime(plan=None, policy=None, bindings=None, config=None):
    app = corner_turn_model(N, NODES)
    glue = generate_glue(app, benchmark_mapping(app, NODES),
                         num_processors=NODES)
    env = Environment()
    cluster = SimCluster.from_platform(env, cspi(), NODES, fault_plan=plan)
    return SageRuntime(
        glue, cluster, config=config or DEFAULT_CONFIG,
        bindings=bindings, fault_policy=policy,
    )


def run(runtime, iterations=3):
    return runtime.run(iterations=iterations, input_provider=MatrixProvider(N))


@pytest.fixture(scope="module")
def baseline():
    result = run(make_runtime())
    return result


class TestPolicyValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            FaultPolicy(mode="hope")

    def test_negative_knobs_rejected(self):
        with pytest.raises(ValueError):
            FaultPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            FaultPolicy(backoff_factor=0.5)

    def test_constructors(self):
        assert FaultPolicy.fail_fast().mode == "fail_fast"
        assert not FaultPolicy.fail_fast().checkpoints
        assert FaultPolicy.retry().retries_transfers
        assert FaultPolicy.checkpoint_restart().checkpoints


class TestFailFast:
    def test_node_crash_raises_legible_error(self, baseline):
        plan = FaultPlan().crash_node(1, at=baseline.makespan * 0.4)
        with pytest.raises(NodeFailure, match="node 1 crashed at t="):
            run(make_runtime(plan=plan))

    def test_lost_message_raises_transport_error(self):
        plan = FaultPlan(seed=42).message_loss(0.10)
        with pytest.raises(TransportError,
                           match=r"message .*#\d+ from processor .* "
                                 r"undelivered: message lost"):
            run(make_runtime(plan=plan))

    def test_fault_injected_probes_recorded(self, baseline):
        plan = FaultPlan().crash_node(1, at=baseline.makespan * 0.4)
        runtime = make_runtime(plan=plan)
        with pytest.raises(NodeFailure):
            run(runtime)
        faults = runtime.trace.by_kind("fault_injected")
        assert faults and faults[0].function == "<fault>"
        assert "node_crash" in faults[0].detail
        assert faults[0].processor == 1


class TestRetryPolicy:
    def test_lossy_run_completes_with_retry_probes(self, baseline):
        plan = FaultPlan(seed=42).message_loss(0.10)
        result = run(make_runtime(plan=plan,
                                  policy=FaultPolicy.retry(max_retries=4)))
        assert len(result.trace.by_kind("retry")) > 0
        ref = baseline.full_result(2)
        assert np.array_equal(result.full_result(2), ref)
        # Resent wire time shows up in the makespan.
        assert result.makespan > baseline.makespan

    def test_transient_kernel_fault_is_retried(self):
        calls = {"n": 0}

        def flaky(ctx, inputs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise TransientError("transient kernel hiccup")
            (port,) = ctx.out_regions.keys()
            data = inputs[next(iter(ctx.in_regions))]
            return {port: np.asarray(data).T.copy()}

        binding = KernelBinding("block_transpose", flaky, lambda ctx, ins: 0.0)
        runtime = make_runtime(bindings={"block_transpose": binding},
                               policy=FaultPolicy.retry(max_retries=2))
        result = run(runtime, iterations=1)
        # One thread's first invocation failed and was re-run in place.
        retries = result.trace.by_kind("retry")
        assert len(retries) == 1
        assert "kernel block_transpose" in retries[0].detail
        assert calls["n"] >= 2
        assert result.sink_results[0] is not None

    def test_transient_kernel_fault_fails_fast_without_policy(self):
        def flaky(ctx, inputs):
            raise TransientError("transient kernel hiccup")

        binding = KernelBinding("block_transpose", flaky, lambda ctx, ins: 0.0)
        runtime = make_runtime(bindings={"block_transpose": binding})
        with pytest.raises(TransientError):
            run(runtime, iterations=1)


class TestCheckpointRestart:
    def test_crash_recovers_with_matching_output(self, baseline):
        plan = FaultPlan().crash_node(1, at=baseline.makespan * 0.4)
        runtime = make_runtime(plan=plan,
                               policy=FaultPolicy.checkpoint_restart())
        result = run(runtime)
        # Every iteration finished, the data is bit-identical to the
        # fault-free run, and recovery overhead is visible in the makespan.
        for k in range(3):
            assert np.array_equal(result.full_result(k),
                                  baseline.full_result(k))
        assert result.makespan > baseline.makespan
        checkpoints = result.trace.by_kind("checkpoint")
        restores = result.trace.by_kind("restore")
        assert len(checkpoints) >= 3
        assert len(restores) == 1
        assert "NodeFailure" in restores[0].detail

    def test_latency_of_replayed_iteration_includes_recovery(self, baseline):
        plan = FaultPlan().crash_node(1, at=baseline.makespan * 0.4)
        result = run(make_runtime(plan=plan,
                                  policy=FaultPolicy.checkpoint_restart()))
        # Source admission keeps its first-attempt timestamp, so the replayed
        # iteration's latency grows by the recovery time.
        assert max(result.latencies) > max(baseline.latencies)

    def test_permanent_crash_is_not_recoverable(self, baseline):
        plan = FaultPlan().crash_node(1, at=baseline.makespan * 0.4,
                                      permanent=True)
        runtime = make_runtime(plan=plan,
                               policy=FaultPolicy.checkpoint_restart())
        with pytest.raises(RuntimeError_, match=r"node\(s\) \[1\] failed "
                                                r"permanently"):
            run(runtime)

    def test_restart_budget_exhaustion_reraises(self, baseline):
        plan = FaultPlan().crash_node(1, at=baseline.makespan * 0.4)
        runtime = make_runtime(
            plan=plan,
            policy=FaultPolicy.checkpoint_restart(max_restarts=0),
        )
        with pytest.raises(NodeFailure):
            run(runtime)

    def test_fault_free_checkpointing_matches_baseline_output(self, baseline):
        result = run(make_runtime(policy=FaultPolicy.checkpoint_restart()))
        for k in range(3):
            assert np.array_equal(result.full_result(k),
                                  baseline.full_result(k))
        assert not result.trace.by_kind("restore")


class TestDeterminism:
    @staticmethod
    def signature(result):
        return [
            (e.time, e.kind, e.function, e.thread, e.iteration, e.detail,
             e.nbytes)
            for e in result.trace.events
        ]

    def test_same_seed_same_plan_is_bit_deterministic(self):
        def once():
            plan = (FaultPlan(seed=7).message_loss(0.08)
                    .degrade_link(0, 1, at=0.0, factor=0.5))
            return run(make_runtime(plan=plan,
                                    policy=FaultPolicy.retry(max_retries=5)))

        a, b = once(), once()
        assert a.makespan == b.makespan
        assert self.signature(a) == self.signature(b)
        assert np.array_equal(a.full_result(2), b.full_result(2))

    def test_checkpoint_recovery_is_deterministic(self, baseline):
        def once():
            plan = FaultPlan(seed=5).crash_node(
                1, at=baseline.makespan * 0.4
            ).message_loss(0.02)
            return run(make_runtime(
                plan=plan, policy=FaultPolicy.checkpoint_restart()))

        a, b = once(), once()
        assert self.signature(a) == self.signature(b)

    def test_different_seeds_diverge(self):
        def once(seed):
            plan = FaultPlan(seed=seed).message_loss(0.10)
            return run(make_runtime(plan=plan,
                                    policy=FaultPolicy.retry(max_retries=5)))

        assert self.signature(once(1)) != self.signature(once(2))
