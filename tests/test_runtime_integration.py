"""End-to-end run-time tests: glue generation -> execution on the simulated
CSPI machine -> numerically correct results and sane timing behaviour."""

import numpy as np
import pytest

from repro.apps import MatrixProvider, benchmark_mapping, corner_turn_model, fft2d_model
from repro.core.codegen import generate_glue
from repro.core.model import (
    ApplicationModel,
    DataType,
    FunctionBlock,
    round_robin_mapping,
)
from repro.core.runtime import (
    DEFAULT_CONFIG,
    RuntimeError_,
    SageRuntime,
)
from repro.machine import Environment, SimCluster, cspi


def run_sage(app, nodes, iterations=1, config=None, provider=None, n=None):
    mapping = benchmark_mapping(app, nodes)
    glue = generate_glue(app, mapping, num_processors=nodes)
    env = Environment()
    cluster = SimCluster.from_platform(env, cspi(), nodes)
    runtime = SageRuntime(glue, cluster, config=config or DEFAULT_CONFIG)
    return runtime.run(iterations=iterations, input_provider=provider)


class TestFft2dCorrectness:
    @pytest.mark.parametrize("nodes", [1, 2, 4])
    @pytest.mark.parametrize("n", [16, 64])
    def test_matches_numpy_fft2(self, nodes, n):
        provider = MatrixProvider(n, seed=7)
        app = fft2d_model(n, nodes)
        result = run_sage(app, nodes, provider=provider, n=n)
        got = result.full_result(0)
        expected = np.fft.fft2(provider(0))
        np.testing.assert_allclose(got, expected, rtol=0, atol=2e-1)

    def test_multiple_iterations_distinct_data(self):
        n, nodes = 16, 2
        provider = MatrixProvider(n, seed=3)
        app = fft2d_model(n, nodes)
        result = run_sage(app, nodes, iterations=3, provider=provider, n=n)
        for k in range(3):
            np.testing.assert_allclose(
                result.full_result(k), np.fft.fft2(provider(k)), atol=2e-1
            )


class TestCornerTurnCorrectness:
    @pytest.mark.parametrize("nodes", [1, 2, 4, 8])
    def test_result_is_transpose(self, nodes):
        n = 16
        provider = MatrixProvider(n, seed=11)
        app = corner_turn_model(n, nodes)
        result = run_sage(app, nodes, provider=provider, n=n)
        np.testing.assert_array_equal(result.full_result(0), provider(0).T)


class TestTimingBehaviour:
    def test_latency_positive_and_finite(self):
        app = corner_turn_model(64, 4)
        result = run_sage(app, 4, provider=MatrixProvider(64))
        assert 0 < result.mean_latency < 1.0

    def test_phantom_mode_same_latency_as_real(self):
        n, nodes = 64, 4
        app = corner_turn_model(n, nodes)
        real = run_sage(app, nodes, provider=MatrixProvider(n))
        fake = run_sage(
            app, nodes, config=DEFAULT_CONFIG.timing_only(),
        )
        assert fake.mean_latency == pytest.approx(real.mean_latency, rel=1e-12)
        assert fake.full_result(0) is None

    def test_more_nodes_reduce_fft_latency(self):
        n = 256
        lat = {}
        for nodes in (1, 2, 4, 8):
            app = fft2d_model(n, nodes)
            r = run_sage(app, nodes, config=DEFAULT_CONFIG.timing_only())
            lat[nodes] = r.mean_latency
        assert lat[8] < lat[4] < lat[2] < lat[1]

    def test_pipelining_period_below_latency(self):
        app = fft2d_model(64, 4)
        # Unbounded admission: the pipeline fills and the steady-state period
        # drops below the single-data-set latency.
        r = run_sage(
            app, 4, iterations=8, config=DEFAULT_CONFIG.timing_only().pipelined()
        )
        assert r.period < r.mean_latency

    def test_latency_protocol_serialises_data_sets(self):
        app = fft2d_model(64, 4)
        r = run_sage(app, 4, iterations=4, config=DEFAULT_CONFIG.timing_only())
        # max_in_flight=1: iteration k+1's source starts after sink k, so
        # per-iteration latency stays flat instead of growing with queueing.
        lats = r.latencies
        assert max(lats) - min(lats) < 1e-9

    def test_deterministic_runs(self):
        app = corner_turn_model(64, 4)
        r1 = run_sage(app, 4, config=DEFAULT_CONFIG.timing_only())
        r2 = run_sage(app, 4, config=DEFAULT_CONFIG.timing_only())
        assert r1.sink_times == r2.sink_times

    def test_optimized_config_is_faster(self):
        app = corner_turn_model(256, 4)
        base = run_sage(app, 4, config=DEFAULT_CONFIG.timing_only())
        opt = run_sage(
            app, 4, config=DEFAULT_CONFIG.optimized().timing_only()
        )
        assert opt.mean_latency < base.mean_latency

    def test_optimized_glue_flag_applies(self):
        n, nodes = 64, 4
        app = corner_turn_model(n, nodes)
        mapping = benchmark_mapping(app, nodes)
        glue_opt = generate_glue(app, mapping, num_processors=nodes, optimize_buffers=True)
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), nodes)
        runtime = SageRuntime(glue_opt, cluster, config=DEFAULT_CONFIG.timing_only())
        assert runtime.config.stage_dma_sources is False

    def test_source_interval_throttles_period(self):
        app = fft2d_model(64, 4)
        mapping = benchmark_mapping(app, 4)
        glue = generate_glue(app, mapping, num_processors=4)
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), 4)
        runtime = SageRuntime(glue, cluster, config=DEFAULT_CONFIG.timing_only())
        interval = 0.5
        result = runtime.run(iterations=4, source_interval=interval)
        assert result.period == pytest.approx(interval, rel=0.01)


class TestTrace:
    def test_probe_events_recorded(self):
        app = corner_turn_model(16, 2)
        provider = MatrixProvider(16)
        mapping = benchmark_mapping(app, 2)
        glue = generate_glue(app, mapping, num_processors=2)
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), 2)
        runtime = SageRuntime(glue, cluster)
        result = runtime.run(iterations=2, input_provider=provider)
        trace = result.trace
        assert len(trace.by_kind("enter")) == len(trace.by_kind("exit")) == 2 * 3 * 2
        assert len(trace.by_kind("sink")) == 2 * 2
        sends = trace.by_kind("send")
        assert sends and all(e.nbytes > 0 for e in sends)
        spans = trace.spans()
        assert all(t1 <= t2 for *_, t1, t2 in spans)


class TestRuntimeErrors:
    def test_cluster_too_small(self):
        app = corner_turn_model(16, 4)
        glue = generate_glue(app, benchmark_mapping(app, 4), num_processors=4)
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), 2)
        with pytest.raises(RuntimeError_, match="expects 4 processors"):
            SageRuntime(glue, cluster)

    def test_unknown_kernel_rejected_at_load(self):
        t = DataType("m", "complex64", (8, 8))
        app = ApplicationModel("bad")
        src = app.add_block(FunctionBlock("src", kernel="matrix_source"))
        src.add_out("out", t)
        odd = app.add_block(FunctionBlock("odd", kernel="quantum_annealer"))
        odd.add_in("in", t)
        app.connect(src.port("out"), odd.port("in"))
        glue = generate_glue(app, round_robin_mapping(app, 1), num_processors=1)
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), 1)
        with pytest.raises(RuntimeError_, match="no binding for kernel"):
            SageRuntime(glue, cluster)

    def test_missing_provider_in_execute_mode(self):
        app = corner_turn_model(16, 2)
        glue = generate_glue(app, benchmark_mapping(app, 2), num_processors=2)
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), 2)
        runtime = SageRuntime(glue, cluster)
        with pytest.raises(RuntimeError_, match="input_provider"):
            runtime.run(iterations=1)

    def test_zero_iterations_rejected(self):
        app = corner_turn_model(16, 2)
        glue = generate_glue(app, benchmark_mapping(app, 2), num_processors=2)
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), 2)
        runtime = SageRuntime(glue, cluster, config=DEFAULT_CONFIG.timing_only())
        with pytest.raises(RuntimeError_):
            runtime.run(iterations=0)

    def test_app_without_source_rejected(self):
        t = DataType("m", "complex64", (8, 8))
        app = ApplicationModel("loopless")
        a = app.add_block(FunctionBlock("a", kernel="identity"))
        a.add_in("in", t)
        a.add_out("out", t)
        b = app.add_block(FunctionBlock("b", kernel="identity"))
        b.add_in("in", t)
        b.add_out("out", t)
        app.connect(a.port("out"), b.port("in"))
        app.connect(b.port("out"), a.port("in"))
        # cycle: generation itself refuses via validation
        from repro.core.model import ModelError

        with pytest.raises(ModelError):
            generate_glue(app, round_robin_mapping(app, 1), num_processors=1)
