"""Property-based integration tests: random dataflow applications through
codegen + runtime must satisfy system invariants (completion, probe balance,
message-plan conservation, determinism)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codegen import generate_glue
from repro.core.model import (
    ApplicationModel,
    DataType,
    FunctionBlock,
    REPLICATED,
    cyclic,
    round_robin_mapping,
    striped,
)
from repro.core.runtime import DEFAULT_CONFIG, SageRuntime
from repro.machine import Environment, SimCluster, cspi

N = 16

_stripings = st.sampled_from(
    [REPLICATED, striped(0), striped(1), cyclic(0), cyclic(1, block=2)]
)


@st.composite
def chain_apps(draw):
    """A random linear chain: source -> k x identity stages -> sink, with
    random thread counts and stripings on every port."""
    t = DataType("m", "complex64", (N, N))
    stages = draw(st.integers(1, 4))
    nodes = draw(st.sampled_from([1, 2, 4]))
    app = ApplicationModel("randchain")
    src_threads = draw(st.sampled_from([1, nodes]))
    src = app.add_block(
        FunctionBlock("src", kernel="matrix_source", threads=src_threads)
    )
    src.add_out("out", t, draw(_stripings))
    prev = src
    for i in range(stages):
        threads = draw(st.sampled_from([1, 2, nodes]))
        blk = app.add_block(FunctionBlock(f"f{i}", kernel="identity", threads=threads))
        in_striping = draw(_stripings)
        # identity can only emit data it received: with a replicated input
        # any output layout is legal, otherwise the ports must agree.
        out_striping = draw(_stripings) if not in_striping.is_striped else in_striping
        blk.add_in("in", t, in_striping)
        blk.add_out("out", t, out_striping)
        app.connect(prev.port("out"), blk.port("in"))
        prev = blk
    sink = app.add_block(FunctionBlock("sink", kernel="matrix_sink"))
    sink.add_in("in", t, REPLICATED)
    app.connect(prev.port("out"), sink.port("in"))
    return app, nodes


@given(chain_apps(), st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_random_chain_preserves_data_and_balances_probes(app_and_nodes, iterations):
    app, nodes = app_and_nodes
    glue = generate_glue(app, round_robin_mapping(app, nodes), num_processors=nodes)
    env = Environment()
    cluster = SimCluster.from_platform(env, cspi(), nodes)
    runtime = SageRuntime(glue, cluster)
    rng = np.random.default_rng(7)
    data = (rng.standard_normal((N, N)) + 1j * rng.standard_normal((N, N))).astype(
        "complex64"
    )
    result = runtime.run(iterations=iterations, input_provider=lambda k: data)

    # 1) identity chain: output == input, every iteration
    for k in range(iterations):
        np.testing.assert_array_equal(result.full_result(k), data)

    # 2) probe balance: every enter has an exit, every send an arrive
    trace = result.trace
    assert len(trace.by_kind("enter")) == len(trace.by_kind("exit"))
    assert len(trace.by_kind("send")) == len(trace.by_kind("arrive"))

    # 3) message conservation: sends per iteration == planned messages
    planned = sum(len(buf.plan) for buf in runtime.buffers)
    assert len(trace.by_kind("send")) == planned * iterations

    # 4) every buffer's storage was drained (no leaks)
    assert all(buf.live_iterations == 0 for buf in runtime.buffers)

    # 5) time sanity: source precedes sink, latencies positive
    assert all(lat > 0 for lat in result.latencies)
    assert result.makespan >= max(result.sink_times)


@given(chain_apps())
@settings(max_examples=20, deadline=None)
def test_random_chain_timing_deterministic(app_and_nodes):
    app, nodes = app_and_nodes
    glue = generate_glue(app, round_robin_mapping(app, nodes), num_processors=nodes)

    def run_once():
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), nodes)
        runtime = SageRuntime(glue, cluster, config=DEFAULT_CONFIG.timing_only())
        return runtime.run(iterations=2)

    r1, r2 = run_once(), run_once()
    assert r1.sink_times == r2.sink_times
    assert r1.source_times == r2.source_times


@given(chain_apps())
@settings(max_examples=20, deadline=None)
def test_timing_mode_matches_data_mode_clock(app_and_nodes):
    """Phantom payloads must produce the identical virtual timeline."""
    app, nodes = app_and_nodes
    glue = generate_glue(app, round_robin_mapping(app, nodes), num_processors=nodes)
    data = np.zeros((N, N), dtype="complex64")

    def run_once(config, provider):
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), nodes)
        runtime = SageRuntime(glue, cluster, config=config)
        return runtime.run(iterations=1, input_provider=provider)

    real = run_once(DEFAULT_CONFIG, lambda k: data)
    fake = run_once(DEFAULT_CONFIG.timing_only(), None)
    assert fake.sink_times == pytest.approx(real.sink_times, rel=1e-12)
