"""Run-time shrinking recovery: detect, shrink, re-stripe, complete degraded."""

import numpy as np
import pytest

from repro.apps import (
    MatrixProvider,
    benchmark_mapping,
    corner_turn_model,
    fft2d_model,
)
from repro.core.codegen import generate_glue
from repro.core.model import Mapping, ModelError, shrink_mapping
from repro.core.runtime import DEFAULT_CONFIG, SageRuntime
from repro.core.runtime.striping import PlannedMessage, plan_remote_traffic
from repro.faults import FaultPlan, FaultPolicy
from repro.machine import Environment, SimCluster, cspi

N = 32
NODES = 8


def make_runtime(builder=fft2d_model, plan=None, policy=None):
    app = builder(N, NODES)
    glue = generate_glue(app, benchmark_mapping(app, NODES),
                         num_processors=NODES)
    env = Environment()
    cluster = SimCluster.from_platform(env, cspi(), NODES, fault_plan=plan)
    return SageRuntime(glue, cluster, config=DEFAULT_CONFIG,
                       fault_policy=policy)


def run(runtime, iterations=3):
    return runtime.run(iterations=iterations, input_provider=MatrixProvider(N))


@pytest.fixture(scope="module")
def baselines():
    return {
        "fft2d": run(make_runtime(fft2d_model)),
        "corner_turn": run(make_runtime(corner_turn_model)),
    }


class TestShrinkMapping:
    def test_survivor_threads_stay_put(self):
        m = Mapping({(0, 0): 0, (0, 1): 1, (0, 2): 2})
        out = shrink_mapping(m, [0, 2])
        assert out.processor_of(0, 0) == 0
        assert out.processor_of(0, 2) == 2

    def test_orphans_dealt_round_robin_deterministically(self):
        m = Mapping({(0, t): t % 4 for t in range(8)})
        out = shrink_mapping(m, [0, 1])
        orphans = [out.processor_of(0, t) for t in range(8) if t % 4 >= 2]
        assert orphans == [0, 1, 0, 1]

    def test_needs_a_survivor(self):
        with pytest.raises(ModelError, match="survivor"):
            shrink_mapping(Mapping({(0, 0): 0}), [])


class TestPlanRemoteTraffic:
    def test_counts_only_cross_processor_bytes(self):
        plan = [
            PlannedMessage(0, 0, (), 100),   # co-located below
            PlannedMessage(0, 1, (), 40),    # remote
            PlannedMessage(1, 0, (), 7),     # remote
        ]
        send, recv = plan_remote_traffic(
            plan, lambda t: t % 2, lambda t: 0)
        assert send == {1: 7}
        assert recv == {0: 7}
        send, recv = plan_remote_traffic(
            plan, lambda t: 0, lambda t: t % 2)
        assert send == {0: 40}
        assert recv == {1: 40}


class TestShrinkRecovery:
    @pytest.mark.parametrize("app_name,builder",
                             [("fft2d", fft2d_model),
                              ("corner_turn", corner_turn_model)])
    def test_bitwise_correct_after_permanent_kill(self, baselines,
                                                  app_name, builder):
        """Acceptance: a permanent mid-run kill of 1 of 8 nodes is survived
        with bitwise-identical results at degraded throughput."""
        base = baselines[app_name]
        plan = FaultPlan(seed=5).crash_node(
            3, at=base.makespan * 0.4, permanent=True)
        runtime = make_runtime(builder, plan=plan,
                               policy=FaultPolicy.shrink_restripe())
        result = run(runtime)
        for k in range(3):
            assert np.array_equal(result.full_result(k), base.full_result(k))
        # Degraded, not free: recovery and the lost node cost makespan.
        assert result.makespan > base.makespan

    def test_recovery_probes_on_the_timeline(self, baselines):
        base = baselines["fft2d"]
        plan = FaultPlan(seed=5).crash_node(
            3, at=base.makespan * 0.4, permanent=True)
        runtime = make_runtime(fft2d_model, plan=plan,
                               policy=FaultPolicy.shrink_restripe())
        result = run(runtime)
        for kind in ("fault_injected", "suspect", "declare_dead",
                     "checkpoint", "shrink", "restripe", "restore"):
            assert result.trace.by_kind(kind), kind
        declare = result.trace.by_kind("declare_dead")[0]
        crash = next(e for e in result.trace.by_kind("fault_injected")
                     if "node_crash" in e.detail)
        # Detection happens after the crash, within ~the configured window.
        policy = runtime.fault_policy
        window = ((policy.miss_grace + policy.suspicion_threshold)
                  * policy.heartbeat_period)
        assert 0 < declare.time - crash.time <= 2 * window
        assert declare.processor == 3
        # The shrink happened at/after declaration, the restripe moved bytes.
        shrink = result.trace.by_kind("shrink")[0]
        restripe = result.trace.by_kind("restripe")[0]
        assert shrink.time >= declare.time
        assert restripe.time >= shrink.time
        assert restripe.nbytes > 0

    def test_two_permanent_kills_survived(self, baselines):
        base = baselines["corner_turn"]
        plan = (FaultPlan(seed=6)
                .crash_node(7, at=base.makespan * 0.35, permanent=True)
                .crash_node(6, at=base.makespan * 0.55, permanent=True))
        runtime = make_runtime(
            corner_turn_model, plan=plan,
            policy=FaultPolicy.shrink_restripe(max_restarts=4))
        result = run(runtime)
        for k in range(3):
            assert np.array_equal(result.full_result(k), base.full_result(k))
        assert len(result.trace.by_kind("shrink")) == 2

    def test_checkpoint_restart_still_aborts_on_permanent_loss(self, baselines):
        """Without shrink_restripe, permanent loss stays fatal (PR 1 contract)."""
        base = baselines["fft2d"]
        plan = FaultPlan(seed=5).crash_node(
            3, at=base.makespan * 0.4, permanent=True)
        runtime = make_runtime(fft2d_model, plan=plan,
                               policy=FaultPolicy.checkpoint_restart())
        with pytest.raises(RuntimeError, match="failed permanently"):
            run(runtime)

    def test_transient_crash_under_shrink_policy_revives(self, baselines):
        """A revivable crash is restarted and cleared, not shrunk away."""
        base = baselines["fft2d"]
        plan = FaultPlan(seed=5).crash_node(3, at=base.makespan * 0.4)
        runtime = make_runtime(fft2d_model, plan=plan,
                               policy=FaultPolicy.shrink_restripe())
        result = run(runtime)
        for k in range(3):
            assert np.array_equal(result.full_result(k), base.full_result(k))
        assert not result.trace.by_kind("shrink")
        assert result.trace.by_kind("restore")

    def test_fault_free_shrink_policy_changes_nothing(self, baselines):
        """Acceptance: zero false positives — no detector verdicts, results
        and probe content identical to a checkpointing run."""
        result = run(make_runtime(fft2d_model,
                                  policy=FaultPolicy.shrink_restripe()))
        for kind in ("suspect", "declare_dead", "shrink", "restripe",
                     "restore"):
            assert not result.trace.by_kind(kind)
        base = baselines["fft2d"]
        for k in range(3):
            assert np.array_equal(result.full_result(k), base.full_result(k))


class TestDeterminism:
    @staticmethod
    def _recovery_trace():
        runtime = make_runtime(
            fft2d_model,
            plan=FaultPlan(seed=5).crash_node(3, at=0.0006, permanent=True),
            policy=FaultPolicy.shrink_restripe())
        result = run(runtime)
        return result.makespan, [
            (e.time, e.kind, e.processor, e.detail)
            for e in result.trace
            if e.kind in ("suspect", "declare_dead", "shrink", "restripe",
                          "restore", "checkpoint")
        ]

    def test_identical_seeds_reproduce_identical_recovery(self):
        assert self._recovery_trace() == self._recovery_trace()
