"""Striping region algebra, phantom arrays, and buffer-manager tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import REPLICATED, cyclic, striped
from repro.core.runtime import (
    AxisIndices,
    BufferError,
    PhantomArray,
    RuntimeBuffer,
    intersect,
    materialize,
    message_plan,
    region_elems,
    region_shape,
    thread_region,
)


def box(*bounds):
    """Shorthand: a contiguous region from (start, stop) pairs."""
    return tuple(AxisIndices.of_range(a, b) for a, b in bounds)


class TestAxisIndices:
    def test_range_basics(self):
        ax = AxisIndices.of_range(2, 6)
        assert ax.count() == 4
        assert ax.is_contiguous
        assert list(ax.as_array()) == [2, 3, 4, 5]
        assert ax.indexer() == slice(2, 6)

    def test_index_set_basics(self):
        ax = AxisIndices.of_indices([0, 2, 4])
        assert ax.count() == 3
        assert not ax.is_contiguous

    def test_contiguous_indices_collapse_to_range(self):
        ax = AxisIndices.of_indices([3, 4, 5])
        assert ax.is_contiguous
        assert (ax.start, ax.stop) == (3, 6)

    def test_non_increasing_rejected(self):
        with pytest.raises(ValueError):
            AxisIndices.of_indices([3, 3])
        with pytest.raises(ValueError):
            AxisIndices.of_indices([5, 2])

    def test_intersect_range_range(self):
        assert AxisIndices.of_range(0, 4).intersect(AxisIndices.of_range(2, 6)) == (
            AxisIndices.of_range(2, 4)
        )
        assert AxisIndices.of_range(0, 4).intersect(AxisIndices.of_range(4, 8)) is None

    def test_intersect_cyclic_range(self):
        evens = AxisIndices.of_indices([0, 2, 4, 6])
        assert evens.intersect(AxisIndices.of_range(0, 4)) == AxisIndices.of_indices([0, 2])

    def test_intersect_cyclic_cyclic_disjoint(self):
        evens = AxisIndices.of_indices([0, 2, 4])
        odds = AxisIndices.of_indices([1, 3, 5])
        assert evens.intersect(odds) is None

    def test_positions_of(self):
        ax = AxisIndices.of_indices([1, 3, 5, 7])
        sub = AxisIndices.of_indices([3, 7])
        assert list(ax.positions_of(sub)) == [1, 3]

    def test_positions_of_not_contained(self):
        with pytest.raises(ValueError):
            AxisIndices.of_indices([1, 3]).positions_of(AxisIndices.of_indices([2]))

    def test_hash_and_eq(self):
        assert AxisIndices.of_range(0, 3) == AxisIndices.of_indices([0, 1, 2])
        assert hash(AxisIndices.of_range(0, 3)) == hash(AxisIndices.of_indices([0, 1, 2]))
        assert AxisIndices.of_range(0, 3) != AxisIndices.of_indices([0, 1, 3])


class TestThreadRegion:
    def test_replicated_full_box(self):
        assert thread_region((8, 6), REPLICATED, 4, 2) == box((0, 8), (0, 6))

    def test_striped_axis0(self):
        assert thread_region((8, 6), striped(0), 4, 1) == box((2, 4), (0, 6))

    def test_striped_axis1(self):
        assert thread_region((8, 6), striped(1), 3, 2) == box((0, 8), (4, 6))

    def test_uneven_division_leading_threads_bigger(self):
        regions = [thread_region((10,), striped(0), 4, t) for t in range(4)]
        sizes = [r[0].count() for r in regions]
        assert sizes == [3, 3, 2, 2]

    def test_cyclic_round_robin(self):
        r0 = thread_region((8,), cyclic(0), 2, 0)
        r1 = thread_region((8,), cyclic(0), 2, 1)
        assert list(r0[0].as_array()) == [0, 2, 4, 6]
        assert list(r1[0].as_array()) == [1, 3, 5, 7]

    def test_block_cyclic(self):
        r0 = thread_region((8,), cyclic(0, block=2), 2, 0)
        assert list(r0[0].as_array()) == [0, 1, 4, 5]

    def test_cyclic_thread_with_no_data(self):
        r3 = thread_region((2,), cyclic(0), 4, 3)
        assert r3[0].count() == 0

    def test_out_of_range_thread(self):
        with pytest.raises(ValueError):
            thread_region((8,), striped(0), 2, 2)

    def test_axis_out_of_range(self):
        with pytest.raises(ValueError):
            thread_region((8,), striped(1), 2, 0)

    @given(st.integers(1, 64), st.integers(1, 8), st.integers(0, 1))
    @settings(max_examples=60, deadline=None)
    def test_striped_regions_partition_exactly(self, extent, threads, axis):
        shape = (extent, 16) if axis == 0 else (16, extent)
        if threads > extent:
            threads = extent
        regions = [
            thread_region(shape, striped(axis), threads, t) for t in range(threads)
        ]
        # Disjoint along the axis, covering [0, extent)
        spans = sorted((r[axis].start, r[axis].stop) for r in regions)
        assert spans[0][0] == 0 and spans[-1][1] == extent
        for (_a1, b1), (a2, _) in zip(spans, spans[1:]):
            assert b1 == a2
        # Total elements == full logical size
        total = sum(region_elems(r) for r in regions)
        assert total == shape[0] * shape[1]

    @given(st.integers(1, 64), st.integers(1, 8), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_cyclic_regions_partition_exactly(self, extent, threads, block):
        import numpy as np

        regions = [
            thread_region((extent,), cyclic(0, block=block), threads, t)
            for t in range(threads)
        ]
        all_indices = np.concatenate([r[0].as_array() for r in regions])
        assert sorted(all_indices) == list(range(extent))


class TestIntersect:
    def test_overlap(self):
        assert intersect(box((0, 4), (0, 8)), box((2, 6), (0, 8))) == box((2, 4), (0, 8))

    def test_disjoint_is_none(self):
        assert intersect(box((0, 4)), box((4, 8))) is None

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            intersect(box((0, 1)), box((0, 1), (0, 1)))

    def test_region_shape(self):
        assert region_shape(box((2, 4), (0, 8))) == (2, 8)


class TestMessagePlan:
    def test_same_axis_same_threads_is_one_to_one(self):
        plan = message_plan((8, 8), 8, striped(0), 4, striped(0), 4)
        assert len(plan) == 4
        assert all(m.src_thread == m.dst_thread for m in plan)

    def test_cross_axis_is_all_to_all(self):
        plan = message_plan((8, 8), 8, striped(0), 4, striped(1), 4)
        pairs = {(m.src_thread, m.dst_thread) for m in plan}
        assert pairs == {(s, d) for s in range(4) for d in range(4)}
        # Each tile is 2x2 complex64
        assert all(m.nbytes == 2 * 2 * 8 for m in plan)

    def test_scatter_from_single_source(self):
        plan = message_plan((8, 8), 8, striped(0), 1, striped(0), 4)
        assert len(plan) == 4
        assert all(m.src_thread == 0 for m in plan)
        assert {m.dst_thread for m in plan} == {0, 1, 2, 3}

    def test_gather_to_single_sink(self):
        plan = message_plan((8, 8), 8, striped(1), 4, REPLICATED, 1)
        assert len(plan) == 4
        assert all(m.dst_thread == 0 for m in plan)

    def test_replicated_source_spreads_load(self):
        plan = message_plan((8, 8), 8, REPLICATED, 2, striped(0), 4)
        # destinations 0..3 pull from source threads d % 2
        assert [(m.src_thread, m.dst_thread) for m in plan] == [
            (0, 0), (1, 1), (0, 2), (1, 3)
        ]

    def test_replicated_to_replicated(self):
        plan = message_plan((4,), 4, REPLICATED, 1, REPLICATED, 3)
        assert len(plan) == 3
        assert all(m.nbytes == 16 for m in plan)

    @given(
        st.sampled_from([4, 8, 16, 32]),
        st.integers(1, 8),
        st.integers(1, 8),
        st.sampled_from([(0, 0), (0, 1), (1, 0), (1, 1)]),
    )
    @settings(max_examples=80, deadline=None)
    def test_every_dst_region_exactly_covered(self, n, st_, dt, axes):
        """Property: the union of message regions per destination thread is a
        disjoint exact cover of that thread's region."""
        src_threads = min(st_, n)
        dst_threads = min(dt, n)
        sa, da = axes
        plan = message_plan((n, n), 8, striped(sa), src_threads, striped(da), dst_threads)
        for d in range(dst_threads):
            need = thread_region((n, n), striped(da), dst_threads, d)
            pieces = [m.region for m in plan if m.dst_thread == d]
            got = sum(region_elems(r) for r in pieces)
            assert got == region_elems(need)
            # every piece inside the needed region
            for r in pieces:
                assert intersect(r, need) == r


class TestPhantomArray:
    def test_metadata(self):
        p = PhantomArray((4, 8), "complex64")
        assert p.size == 32
        assert p.nbytes == 256
        assert p.ndim == 2
        assert p.T.shape == (8, 4)

    def test_slicing(self):
        p = PhantomArray((8, 6))
        assert p[2:4].shape == (2, 6)
        assert p[2:4, 1:3].shape == (2, 2)
        assert p[0].shape == (6,)

    def test_slice_step_rejected(self):
        with pytest.raises(ValueError):
            PhantomArray((8,))[::2]

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            PhantomArray((4,))[9]
        with pytest.raises(IndexError):
            PhantomArray((4,))[0, 0]

    def test_reshape(self):
        assert PhantomArray((4, 4)).reshape(16).shape == (16,)
        with pytest.raises(ValueError):
            PhantomArray((4, 4)).reshape(5)

    def test_materialize(self):
        arr = materialize(PhantomArray((2, 2), "float32"))
        assert isinstance(arr, np.ndarray)
        assert arr.shape == (2, 2) and not arr.any()

    def test_equality_and_copy(self):
        a = PhantomArray((2, 3))
        assert a == a.copy()
        assert a.astype("float32") != a


def make_buffer(execute_data=True, src_threads=2, dst_threads=2, src_axis=0, dst_axis=0):
    spec = {
        "id": 0,
        "name": "a.out->b.in",
        "src_function": 0,
        "src_port": "out",
        "dst_function": 1,
        "dst_port": "in",
        "dtype": "complex64",
        "shape": (8, 8),
        "elem_bytes": 8,
        "total_bytes": 8 * 8 * 8,
        "src_striping": {"kind": "striped", "axis": src_axis},
        "dst_striping": {"kind": "striped", "axis": dst_axis},
        "src_threads": src_threads,
        "dst_threads": dst_threads,
    }
    return RuntimeBuffer(spec, execute_data=execute_data)


class TestRuntimeBuffer:
    def test_write_then_read_roundtrips(self):
        buf = make_buffer()
        rng = np.random.default_rng(0)
        full = rng.normal(size=(8, 8)).astype("complex64")
        buf.write(0, 0, full[:4])
        buf.write(0, 1, full[4:])
        np.testing.assert_array_equal(buf.read(0, 0), full[:4])
        np.testing.assert_array_equal(buf.read(0, 1), full[4:])

    def test_corner_turn_redistribution(self):
        buf = make_buffer(src_axis=0, dst_axis=1)
        rng = np.random.default_rng(1)
        full = rng.normal(size=(8, 8)).astype("complex64")
        buf.write(0, 0, full[:4])
        buf.write(0, 1, full[4:])
        np.testing.assert_array_equal(buf.read(0, 0), full[:, :4])
        np.testing.assert_array_equal(buf.read(0, 1), full[:, 4:])

    def test_read_returns_copy(self):
        buf = make_buffer()
        buf.write(0, 0, np.ones((4, 8), dtype="complex64"))
        buf.write(0, 1, np.ones((4, 8), dtype="complex64"))
        out = buf.read(0, 0)
        out[:] = 0
        # storage was freed only after both reads; second read unaffected
        np.testing.assert_array_equal(buf.read(0, 1), np.ones((4, 8)))

    def test_wrong_shape_write_rejected(self):
        buf = make_buffer()
        with pytest.raises(BufferError, match="region needs"):
            buf.write(0, 0, np.ones((3, 8)))

    def test_read_before_write_rejected(self):
        with pytest.raises(BufferError, match="before any write"):
            make_buffer().read(0, 0)

    def test_storage_freed_after_all_reads(self):
        buf = make_buffer()
        buf.write(0, 0, np.zeros((4, 8), dtype="complex64"))
        buf.write(0, 1, np.zeros((4, 8), dtype="complex64"))
        assert buf.live_iterations == 1
        buf.read(0, 0)
        buf.read(0, 1)
        assert buf.live_iterations == 0

    def test_multiple_iterations_in_flight(self):
        buf = make_buffer()
        for k in range(3):
            buf.write(k, 0, np.full((4, 8), k, dtype="complex64"))
            buf.write(k, 1, np.full((4, 8), k, dtype="complex64"))
        assert buf.live_iterations == 3
        assert buf.read(1, 0)[0, 0] == 1

    def test_phantom_mode_checks_shapes_only(self):
        buf = make_buffer(execute_data=False)
        buf.write(0, 0, PhantomArray((4, 8)))
        buf.write(0, 1, PhantomArray((4, 8)))
        out = buf.read(0, 0)
        assert isinstance(out, PhantomArray)
        assert out.shape == (4, 8)

    def test_phantom_mode_wrong_shape_rejected(self):
        buf = make_buffer(execute_data=False)
        with pytest.raises(BufferError):
            buf.write(0, 0, PhantomArray((5, 8)))

    def test_inconsistent_total_bytes_rejected(self):
        spec = {
            "id": 0, "name": "x", "src_function": 0, "src_port": "o",
            "dst_function": 1, "dst_port": "i", "dtype": "complex64",
            "shape": (4, 4), "elem_bytes": 8, "total_bytes": 999,
            "src_striping": {"kind": "replicated", "axis": 0},
            "dst_striping": {"kind": "replicated", "axis": 0},
            "src_threads": 1, "dst_threads": 1,
        }
        with pytest.raises(BufferError, match="inconsistent"):
            RuntimeBuffer(spec)
