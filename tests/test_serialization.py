"""Model serialization tests: the JSON 'DoME repository' round-trips."""

import io
import json

import numpy as np
import pytest

from repro.apps import MatrixProvider, benchmark_mapping, fft2d_model
from repro.core.codegen import generate_glue
from repro.core.model import (
    ApplicationModel,
    CompositeBlock,
    DataType,
    FunctionBlock,
    ModelError,
    application_from_dict,
    application_to_dict,
    cspi_hardware,
    cyclic,
    hardware_from_dict,
    hardware_to_dict,
    load_design,
    save_design,
    striped,
)
from repro.core.runtime import SageRuntime
from repro.machine import Environment


MTYPE = DataType("m", "complex64", (32, 32))


def nested_app():
    app = ApplicationModel("nested")
    src = app.add_block(FunctionBlock("src", kernel="matrix_source", params={"n": 32}))
    src.add_out("out", MTYPE, striped(0))
    comp = CompositeBlock("stage")
    inner = comp.add_block(FunctionBlock("work", kernel="fft_rows", threads=2))
    inner.add_in("in", MTYPE, cyclic(0, block=2))
    inner.add_out("out", MTYPE, striped(0))
    comp.export(inner.port("in"), as_name="in")
    comp.export(inner.port("out"), as_name="out")
    app.add_block(comp)
    sink = app.add_block(FunctionBlock("sink", kernel="matrix_sink"))
    sink.add_in("in", MTYPE)
    app.connect(src.port("out"), comp.port("in"))
    app.connect(comp.port("out"), sink.port("in"))
    app.set_property("author", "test")
    inner.set_property("note", 7)
    return app


class TestApplicationRoundTrip:
    def test_structure_preserved(self):
        app = nested_app()
        restored = application_from_dict(application_to_dict(app))
        assert [i.path for i in restored.function_instances()] == [
            "src", "stage.work", "sink"
        ]
        arcs = [
            (s.qualified_name, d.qualified_name) for s, d in restored.flattened_arcs()
        ]
        assert ("src.out", "work.in") in arcs
        assert ("work.out", "sink.in") in arcs

    def test_striping_and_params_preserved(self):
        restored = application_from_dict(application_to_dict(nested_app()))
        work = restored.instance_by_path("stage.work")
        in_port = work.block.port("in")
        assert in_port.striping == cyclic(0, block=2)
        src = restored.instance_by_path("src")
        assert src.block.params == {"n": 32}

    def test_properties_preserved(self):
        restored = application_from_dict(application_to_dict(nested_app()))
        assert restored.get_property("author") == "test"
        assert restored.instance_by_path("stage.work").block.get_property("note") == 7

    def test_double_roundtrip_is_stable(self):
        d1 = application_to_dict(nested_app())
        d2 = application_to_dict(application_from_dict(d1))
        assert d1 == d2

    def test_is_json_serialisable(self):
        text = json.dumps(application_to_dict(nested_app()))
        assert "stage" in text

    def test_wrong_kind_rejected(self):
        with pytest.raises(ModelError, match="not a"):
            application_from_dict({"kind": "hardware", "format_version": 1})

    def test_wrong_version_rejected(self):
        doc = application_to_dict(nested_app())
        doc["format_version"] = 99
        with pytest.raises(ModelError, match="format version"):
            application_from_dict(doc)


class TestHardwareRoundTrip:
    def test_cspi_roundtrip(self):
        hw = cspi_hardware(nodes=6)
        restored = hardware_from_dict(hardware_to_dict(hw))
        assert restored.processor_count == 6
        assert restored.board_map() == hw.board_map()
        assert restored.fabric.inter_board.bandwidth == hw.fabric.inter_board.bandwidth
        assert restored.processors()[0].cpu == hw.processors()[0].cpu

    def test_double_roundtrip_stable(self):
        d1 = hardware_to_dict(cspi_hardware(nodes=8))
        d2 = hardware_to_dict(hardware_from_dict(d1))
        assert d1 == d2


class TestDesignDocument:
    def test_save_load_file(self, tmp_path):
        app = fft2d_model(32, 2)
        hw = cspi_hardware(nodes=2)
        mapping = benchmark_mapping(app, 2)
        path = str(tmp_path / "design.json")
        save_design(path, app, hardware=hw, mapping=mapping)
        app2, hw2, mapping2 = load_design(path)
        assert app2.name == app.name
        assert hw2.processor_count == 2
        assert mapping2 == mapping

    def test_save_load_stream_without_optionals(self):
        app = fft2d_model(32, 2)
        buf = io.StringIO()
        save_design(buf, app)
        buf.seek(0)
        app2, hw2, mapping2 = load_design(buf)
        assert app2.name == app.name
        assert hw2 is None and mapping2 is None

    def test_loaded_design_executes_identically(self, tmp_path):
        """The acid test: a design saved, reloaded, and regenerated produces
        byte-identical glue and numerically identical results."""
        n, nodes = 32, 2
        app = fft2d_model(n, nodes)
        hw = cspi_hardware(nodes=nodes)
        mapping = benchmark_mapping(app, nodes)
        glue1 = generate_glue(app, mapping, num_processors=nodes)

        path = str(tmp_path / "design.json")
        save_design(path, app, hardware=hw, mapping=mapping)
        app2, hw2, mapping2 = load_design(path)
        glue2 = generate_glue(app2, mapping2, num_processors=nodes)
        assert glue1.source == glue2.source

        env = Environment()
        cluster = hw2.build_cluster(env)
        runtime = SageRuntime(glue2, cluster)
        provider = MatrixProvider(n, seed=3)
        result = runtime.run(iterations=1, input_provider=provider)
        np.testing.assert_allclose(
            result.full_result(0), np.fft.fft2(provider(0)), atol=1e-1
        )
