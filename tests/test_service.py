"""End-to-end service tests: submit -> schedule -> run -> bus, plus CLIs."""

import json

import pytest

from repro.service import (
    JobSpec,
    QuotaExceededError,
    SageService,
    TenantQuota,
    TimeBudgetExceeded,
    UnknownJobError,
)
from repro.service.cli import serve_main, submit_main
from repro.service.service import run_standalone


def make_service(**kw):
    kw.setdefault("nodes", 8)
    kw.setdefault("seed", 42)
    return SageService(**kw)


class TestEndToEnd:
    def test_results_bitwise_identical_to_standalone(self):
        svc = make_service()
        specs = [
            JobSpec(tenant="a", app="fft2d", size=32, nodes=2),
            JobSpec(tenant="b", app="corner_turn", size=16, nodes=4,
                    iterations=2),
            JobSpec(tenant="a", app="fft2d", size=64, nodes=4),
        ]
        ids = [svc.submit(s) for s in specs]
        stats = svc.run()
        assert stats.completed == 3
        for jid, spec in zip(ids, specs):
            got = svc.result(jid)
            ref, ref_events = run_standalone(spec)
            assert got.trace_digest == ref.trace.digest()
            assert got.makespan == ref.makespan
            assert got.mean_latency == ref.mean_latency
            assert got.period == ref.period
            assert got.probe_events == len(ref.trace)
            assert got.sim_events == ref_events

    def test_lifecycle_message_order_on_the_bus(self):
        svc = make_service()
        jid = svc.submit(JobSpec(size=16, nodes=2))
        svc.run()
        kinds = [m.kind for m in svc.bus.history_for(f"job.{jid}.lifecycle")]
        assert kinds == ["submitted", "started", "completed"]
        probes = svc.bus.history_for(f"job.{jid}.probes")
        assert len(probes) == 1
        assert probes[0].get("digest") == svc.result(jid).trace_digest
        lease_kinds = [m.kind for m in svc.bus.history_for("scheduler.lease")]
        assert lease_kinds == ["granted", "released"]

    def test_shared_cluster_is_clean_after_run(self):
        svc = make_service()
        svc.submit_batch([JobSpec(size=16, nodes=2)] * 5, spacing=1e-4)
        svc.run()
        assert svc.idle
        assert svc.check_clean() == []
        assert svc.cluster.slot_census() == {i: 0 for i in range(8)}

    def test_node_quota_rejected_at_submit(self):
        svc = make_service(quotas={"small": TenantQuota(max_nodes=2)})
        with pytest.raises(QuotaExceededError) as err:
            svc.submit(JobSpec(tenant="small", size=16, nodes=4))
        assert err.value.kind == "nodes"
        # the rejection never created a job
        assert svc.jobs == {}

    def test_queue_depth_rejection_recorded_and_reraised(self):
        svc = make_service(nodes=4, quotas={"q": TenantQuota(max_queued=1)})
        # one long job occupies the whole cluster so later arrivals queue
        svc.submit(JobSpec(tenant="q", size=64, nodes=4, iterations=3))
        svc.submit(JobSpec(tenant="q", size=16, nodes=1), at=1e-5)
        over = svc.submit(JobSpec(tenant="q", size=16, nodes=1), at=2e-5)
        svc.run()
        job = svc.job(over)
        assert job.state == "rejected"
        with pytest.raises(QuotaExceededError):
            svc.result(over)
        rejects = [m for m in svc.bus.history_for("queue")
                   if m.kind == "rejected"]
        assert [m.get("job") for m in rejects] == [over]

    def test_time_budget_kill(self):
        svc = make_service()
        jid = svc.submit(JobSpec(size=64, nodes=4, iterations=3,
                                 time_budget=1e-4))
        svc.run()
        job = svc.job(jid)
        assert job.state == "failed"
        assert isinstance(job.error, TimeBudgetExceeded)
        with pytest.raises(TimeBudgetExceeded):
            svc.result(jid)
        # the lease ended at the budget boundary, not the makespan
        assert job.end_time == pytest.approx(job.start_time + 1e-4)
        assert svc.check_clean() == []

    def test_unknown_job(self):
        svc = make_service()
        with pytest.raises(UnknownJobError):
            svc.result("j99999")

    def test_deterministic_replay(self):
        def play():
            svc = make_service(seed=7)
            svc.submit_batch(
                [JobSpec(size=16, nodes=2),
                 JobSpec(app="corner_turn", size=16, nodes=4),
                 JobSpec(size=32, nodes=2, iterations=2)],
                spacing=2e-4,
            )
            svc.run()
            return svc
        a, b = play(), play()
        assert a.bus.digest() == b.bus.digest()
        assert [j.lease_nodes for j in a.jobs.values()] == \
               [j.lease_nodes for j in b.jobs.values()]

    def test_concurrent_jobs_overlap_in_virtual_time(self):
        svc = make_service()
        ids = svc.submit_batch(
            [JobSpec(size=32, nodes=2), JobSpec(size=32, nodes=2)])
        svc.run()
        a, b = (svc.job(i) for i in ids)
        # both admitted at t=0 on disjoint node sets: true multiplexing
        assert a.start_time == b.start_time == 0.0
        assert not set(a.lease_nodes) & set(b.lease_nodes)


class TestCli:
    def test_submit_then_serve_batch(self, tmp_path, capsys):
        batch = tmp_path / "batch.json"
        assert submit_main(["--batch", str(batch), "--app", "fft2d",
                            "--size", "32", "--nodes", "2"]) == 0
        assert submit_main(["--batch", str(batch), "--app", "corner_turn",
                            "--size", "16", "--nodes", "4",
                            "--tenant", "b", "--at", "0.001"]) == 0
        doc = json.loads(batch.read_text())
        assert len(doc["jobs"]) == 2
        assert doc["jobs"][1]["at"] == 0.001
        assert serve_main(["--batch", str(batch)]) == 0
        out = capsys.readouterr().out
        assert "completed" in out and "jobs/sec" in out

    def test_submit_rejects_invalid_spec(self, tmp_path):
        batch = tmp_path / "batch.json"
        assert submit_main(["--batch", str(batch), "--size", "24"]) == 2
        assert not batch.exists()

    def test_serve_soak_smoke_writes_bench_section(self, tmp_path, capsys):
        out = tmp_path / "BENCH_simcore.json"
        rc = serve_main(["--soak", "--jobs", "25", "--seed", "3",
                         "-o", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        section = doc["service"]
        assert section["ok"] is True
        assert section["violations"] == []
        assert set(section["invariants"]) == {
            "isolation", "determinism", "quota_no_starvation",
            "zero_leaked_slots", "telemetry",
        }
        assert section["jobs_per_sec"] > 0
        assert section["baseline"]["jobs_per_sec"] > 0
        assert "jobs_per_sec_vs_baseline" in section

    def test_serve_soak_preserves_existing_bench_doc(self, tmp_path):
        out = tmp_path / "BENCH_simcore.json"
        out.write_text(json.dumps({"results": {"fft2d@1": {"total": 1.0}}}))
        assert serve_main(["--soak", "--jobs", "10", "--no-replay",
                          "--no-isolation", "-o", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["results"] == {"fft2d@1": {"total": 1.0}}
        assert "service" in doc

    def test_serve_requires_a_mode(self, capsys):
        with pytest.raises(SystemExit):
            serve_main([])

    def test_main_module_routes_serve(self, tmp_path, monkeypatch):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        batch = tmp_path / "b.json"
        assert main(["submit", "--batch", str(batch)]) == 0
        assert main(["serve", "--batch", str(batch)]) == 0
