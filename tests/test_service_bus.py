"""Event-bus unit tests: topics, subscriptions, messages, determinism."""

import pytest

from repro.service.bus import EventBus
from repro.service.messages import (
    BusMessage,
    canonical_stream,
    job_topic,
    topic_matches,
)


class TestTopicMatching:
    def test_exact(self):
        assert topic_matches("queue", "queue")
        assert not topic_matches("queue", "queue.sub")
        assert not topic_matches("queue.sub", "queue")

    def test_single_segment_wildcard(self):
        assert topic_matches("job.*.lifecycle", "job.j00001.lifecycle")
        assert topic_matches("job.j00001.*", "job.j00001.probes")
        assert not topic_matches("job.*.lifecycle", "job.j00001.probes")
        # * is one segment, never two
        assert not topic_matches("job.*", "job.j00001.lifecycle")

    def test_tail_wildcard(self):
        assert topic_matches("job.#", "job.j00001.lifecycle")
        assert topic_matches("job.j00001.#", "job.j00001.probes")
        assert topic_matches("#", "anything.at.all")
        assert not topic_matches("scheduler.#", "job.j00001.lifecycle")

    def test_no_prefix_confusion(self):
        # j00001 must not match j000011 (dot segments, not string prefixes)
        assert not topic_matches("job.j00001.*", "job.j000011.lifecycle")

    def test_job_topic_helper(self):
        assert job_topic("j00007") == "job.j00007.lifecycle"
        assert job_topic("j00007", "probes") == "job.j00007.probes"


class TestBusMessage:
    def test_payload_sorted_and_typed(self):
        m = BusMessage.make(0, 0.5, "queue", "enqueued",
                            {"b": 2, "a": "x", "c": (1, 2)})
        assert [k for k, _ in m.payload] == ["a", "b", "c"]
        assert m.get("b") == 2
        assert m.get("missing", 42) == 42
        assert m.payload_dict == {"a": "x", "b": 2, "c": (1, 2)}

    def test_lists_become_tuples(self):
        m = BusMessage.make(0, 0.0, "t", "k", {"nodes": [1, 2, 3]})
        assert m.get("nodes") == (1, 2, 3)

    def test_non_primitive_payload_rejected(self):
        with pytest.raises(TypeError):
            BusMessage.make(0, 0.0, "t", "k", {"bad": object()})
        with pytest.raises(TypeError):
            BusMessage.make(0, 0.0, "t", "k", {"bad": {"nested": 1}})
        with pytest.raises(TypeError):
            BusMessage.make(0, 0.0, "t", "k", {"bad": (1, object())})

    def test_canonical_pins_floats(self):
        m = BusMessage.make(3, 0.1 + 0.2, "a.b", "k", {"x": 1.0 / 3.0})
        assert m.canonical() == f"3|{0.1 + 0.2!r}|a.b|k|x={1.0 / 3.0!r}"


class TestEventBus:
    def test_publish_stamps_monotonic_seq(self):
        bus = EventBus()
        msgs = [bus.publish("t", "k", time=float(i)) for i in range(5)]
        assert [m.seq for m in msgs] == [0, 1, 2, 3, 4]
        assert len(bus) == 5

    def test_queue_subscription_pop_and_drain(self):
        bus = EventBus()
        sub = bus.subscribe("job.*.lifecycle")
        bus.publish(job_topic("j1"), "submitted", job="j1")
        bus.publish("queue", "enqueued", job="j1")  # no match
        bus.publish(job_topic("j2"), "started", job="j2")
        assert len(sub) == 2
        assert sub.pop().kind == "submitted"
        assert [m.kind for m in sub.drain()] == ["started"]
        assert sub.pop() is None

    def test_handler_subscription_is_synchronous(self):
        bus = EventBus()
        seen = []
        bus.subscribe("scheduler.#", handler=lambda m: seen.append(m.kind))
        bus.publish("scheduler.lease", "granted", job="j1")
        assert seen == ["granted"]

    def test_close_stops_delivery(self):
        bus = EventBus()
        sub = bus.subscribe("#")
        bus.publish("a", "k")
        sub.close()
        bus.publish("b", "k")
        assert len(sub.drain()) == 1

    def test_history_for_and_topics(self):
        bus = EventBus()
        bus.publish(job_topic("j1"), "submitted", job="j1")
        bus.publish(job_topic("j1", "probes"), "telemetry", job="j1")
        bus.publish("queue", "enqueued", job="j1")
        assert len(bus.history_for("job.j1.#")) == 2
        assert bus.topics() == ["job.j1.lifecycle", "job.j1.probes", "queue"]
        assert bus.counts_by_kind() == {
            "submitted": 1, "telemetry": 1, "enqueued": 1}

    def test_digest_is_replay_stable(self):
        def play(bus):
            bus.publish("queue", "enqueued", time=0.0, job="j1", nodes=2)
            bus.publish(job_topic("j1"), "started", time=0.25, job="j1")
            bus.publish(job_topic("j1"), "completed", time=1.0 / 3.0,
                        job="j1", makespan=0.0025)

        a, b = EventBus(), EventBus()
        play(a)
        play(b)
        assert a.digest() == b.digest()
        assert canonical_stream(a.history) == canonical_stream(b.history)

    def test_digest_sensitive_to_any_field(self):
        a, b = EventBus(), EventBus()
        a.publish("t", "k", time=0.0, x=1)
        b.publish("t", "k", time=0.0, x=2)
        assert a.digest() != b.digest()

    def test_bounded_history(self):
        bus = EventBus(history_limit=2)
        for i in range(5):
            bus.publish("t", "k", i=i)
        assert [m.get("i") for m in bus.history] == [3, 4]
        assert bus.published == 5
