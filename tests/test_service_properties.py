"""Property tests for the service: isolation and determinism under
arbitrary mixed batches.

* **Isolation**: for seeded batches of 2–30 mixed FFT2D / corner-turn
  jobs, submitted in any order with any arrival spacing, every completed
  job's result quantities and probe digest are bitwise identical to the
  same spec run standalone on a private cluster.  Multiplexing — lease
  tie-breaks, cache sharing, interleaved virtual timelines — must never
  leak into a job's computation.
* **Determinism**: two service instances fed the identical submission
  sequence with the same seed produce byte-identical event-bus streams
  (and therefore identical admission order and lease assignments).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import JobSpec, SageService
from repro.service.service import run_standalone

# The candidate designs: every (size, nodes) obeys the model constraints.
# Small shapes keep each simulated run to ~1 ms of host time, so hypothesis
# can afford real end-to-end executions.
_SPEC_POOL = [
    JobSpec(tenant="a", app="fft2d", size=16, nodes=1, iterations=1),
    JobSpec(tenant="a", app="fft2d", size=16, nodes=2, iterations=2),
    JobSpec(tenant="b", app="fft2d", size=32, nodes=2, iterations=1),
    JobSpec(tenant="b", app="corner_turn", size=16, nodes=1, iterations=2),
    JobSpec(tenant="c", app="corner_turn", size=16, nodes=4, iterations=1),
    JobSpec(tenant="c", app="corner_turn", size=32, nodes=2, iterations=1,
            policy="retry"),
    JobSpec(tenant="a", app="fft2d", size=16, nodes=2, iterations=1,
            policy="checkpoint_restart"),
    JobSpec(tenant="b", app="corner_turn", size=16, nodes=2, iterations=3),
]

#: Standalone reference results memoized across examples (specs repeat).
_REFS = {}


def _reference(spec):
    key = spec.fingerprint()
    if key not in _REFS:
        result, sim_events = run_standalone(spec)
        _REFS[key] = (result.trace.digest(), result.makespan,
                      result.mean_latency, result.period, len(result.trace),
                      sim_events)
    return _REFS[key]


batches = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(_SPEC_POOL) - 1),
        st.floats(min_value=0.0, max_value=2e-3, allow_nan=False),
    ),
    min_size=2,
    max_size=30,
)


class TestIsolationProperty:
    @given(batch=batches, seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_any_batch_any_order_bitwise_identical_to_standalone(
            self, batch, seed):
        svc = SageService(nodes=8, seed=seed)
        arrival = 0.0
        ids = []
        for pool_index, gap in batch:
            arrival += gap
            ids.append((svc.submit(_SPEC_POOL[pool_index], at=arrival),
                        _SPEC_POOL[pool_index]))
        svc.run()
        assert svc.check_clean() == []
        for job_id, spec in ids:
            job = svc.job(job_id)
            assert job.state == "completed", (job_id, job.error)
            got = job.result
            digest, makespan, latency, period, nprobes, nevents = \
                _reference(spec)
            assert got.trace_digest == digest
            assert got.makespan == makespan
            assert got.mean_latency == latency
            assert got.period == period
            assert got.probe_events == nprobes
            assert got.sim_events == nevents


class TestDeterminismProperty:
    @given(batch=batches, seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_equal_seed_equal_bus_stream(self, batch, seed):
        def play():
            svc = SageService(nodes=8, seed=seed)
            arrival = 0.0
            for pool_index, gap in batch:
                arrival += gap
                svc.submit(_SPEC_POOL[pool_index], at=arrival)
            svc.run()
            return svc

        a, b = play(), play()
        assert a.bus.digest() == b.bus.digest()
        assert len(a.bus.history) == len(b.bus.history)
        grants_a = [(m.get("job"), m.get("nodes"))
                    for m in a.bus.history_for("scheduler.lease")
                    if m.kind == "granted"]
        grants_b = [(m.get("job"), m.get("nodes"))
                    for m in b.bus.history_for("scheduler.lease")
                    if m.kind == "granted"]
        assert grants_a == grants_b
