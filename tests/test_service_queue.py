"""Job-spec and job-queue unit tests: validation, FIFO, depth quotas."""

import pytest

from repro.service.errors import InvalidJobSpec, QuotaExceededError
from repro.service.jobs import Job, JobQueue, JobSpec


def _job(i, tenant="t", **kw):
    return Job(id=f"j{i:05d}", spec=JobSpec(tenant=tenant, **kw))


class TestJobSpec:
    def test_defaults_validate(self):
        JobSpec().validate()

    @pytest.mark.parametrize("kw", [
        {"tenant": ""},
        {"app": "nope"},
        {"size": 24},            # not a power of two
        {"size": 16, "nodes": 3},  # 16 % 3 != 0 (and not a valid shape)
        {"nodes": 0},
        {"iterations": 0},
        {"policy": "yolo"},
        {"time_budget": 0.0},
    ])
    def test_invalid_specs_raise_typed(self, kw):
        with pytest.raises(InvalidJobSpec):
            JobSpec(**kw).validate()

    def test_invalid_spec_is_also_value_error(self):
        with pytest.raises(ValueError):
            JobSpec(size=24).validate()

    def test_fingerprint_ignores_scheduling_fields(self):
        a = JobSpec(tenant="a", time_budget=1.0)
        b = JobSpec(tenant="b", time_budget=9.0)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != a.with_(size=64).fingerprint()

    def test_dict_roundtrip(self):
        spec = JobSpec(tenant="x", app="corner_turn", size=16, nodes=4,
                       iterations=2, policy="retry", data_seed=9,
                       time_budget=0.5)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(InvalidJobSpec):
            JobSpec.from_dict({"app": "fft2d", "priority": 9})

    def test_build_model(self):
        model = JobSpec(app="fft2d", size=16, nodes=2).build_model()
        assert model.name


class TestJobQueue:
    def test_fifo_order(self):
        q = JobQueue()
        jobs = [_job(i) for i in range(4)]
        for j in jobs:
            q.enqueue(j)
        assert q.head is jobs[0]
        assert q.pending == jobs
        q.remove(jobs[1])
        assert q.pending == [jobs[0], jobs[2], jobs[3]]
        assert len(q) == 3 and bool(q)

    def test_depth_per_tenant(self):
        q = JobQueue()
        q.enqueue(_job(0, tenant="a"))
        q.enqueue(_job(1, tenant="a"))
        q.enqueue(_job(2, tenant="b"))
        assert q.depth() == 3
        assert q.depth("a") == 2
        assert q.depth("b") == 1

    def test_depth_quota_rejects_typed(self):
        q = JobQueue(max_queued=lambda tenant: 2 if tenant == "a" else None)
        q.enqueue(_job(0, tenant="a"))
        q.enqueue(_job(1, tenant="a"))
        q.enqueue(_job(2, tenant="b"))
        with pytest.raises(QuotaExceededError) as err:
            q.enqueue(_job(3, tenant="a"))
        assert err.value.tenant == "a"
        assert err.value.kind == "queued"
        assert err.value.limit == 2
        # other tenants unaffected; the queue itself unchanged
        q.enqueue(_job(4, tenant="b"))
        assert q.depth("a") == 2
        assert q.rejected == 1 and q.enqueued == 4

    def test_job_lifecycle_helpers(self):
        job = _job(0)
        assert not job.done
        assert job.wait_time is None
        job.submit_time, job.start_time = 1.0, 3.5
        assert job.wait_time == 2.5
        job.state = "completed"
        assert job.done
