"""Scheduler unit tests: leasing, quotas, backfill, seeded determinism.

These drive :class:`ClusterScheduler` directly with a scripted ``execute``
callback (durations under our control), so the backfill and no-starvation
properties are proven on *constructed* scenarios rather than hoped for in
a random soak.
"""

import pytest

from repro.machine import Environment, SimCluster, get_platform
from repro.service.errors import AdmissionError, QuotaExceededError
from repro.service.jobs import Job, JobQueue, JobSpec
from repro.service.scheduler import ClusterScheduler, TenantQuota


def make_cluster(nodes=4):
    return SimCluster.from_platform(Environment(), get_platform("cspi"), nodes)


def make_sched(nodes=4, seed=0, **kw):
    return ClusterScheduler(make_cluster(nodes), seed=seed, **kw)


def job(i, tenant="t", nodes=2, budget=5.0):
    # size=16 divides over every node count used here
    return Job(id=f"j{i:05d}",
               spec=JobSpec(tenant=tenant, size=16, nodes=nodes,
                            time_budget=budget))


class Driver:
    """Scripted executor: job id -> duration, records admission order."""

    def __init__(self, sched, durations):
        self.sched = sched
        self.durations = durations
        self.order = []

    def __call__(self, now):
        def execute(j, lease):
            self.order.append(j.id)
            return now + self.durations[j.id]
        return execute


class TestLeasing:
    def test_grant_acquires_slots_release_returns_them(self):
        sched = make_sched(4)
        j = job(0, nodes=3)
        lease = sched.grant(j, now=0.0)
        assert lease.width == 3
        assert sum(sched.cluster.slot_census().values()) == 3
        assert len(sched.free_nodes) == 1
        sched.release(j.id)
        assert sum(sched.cluster.slot_census().values()) == 0
        assert len(sched.free_nodes) == 4
        assert sched.history[0].nodes == lease.nodes

    def test_double_acquire_same_slot_is_an_error(self):
        cluster = make_cluster(2)
        cluster.acquire_slot(0)
        with pytest.raises(ValueError):
            cluster.acquire_slot(0)
        cluster.release_slot(0)
        assert cluster.slot_census() == {0: 0, 1: 0}

    def test_grant_over_capacity_raises(self):
        sched = make_sched(4)
        sched.grant(job(0, nodes=3), now=0.0)
        with pytest.raises(AdmissionError):
            sched.grant(job(1, nodes=2), now=0.0)


class TestAdmissionControl:
    def test_impossible_request_rejected(self):
        sched = make_sched(4)
        with pytest.raises(AdmissionError):
            sched.check_request(JobSpec(size=16, nodes=8))

    def test_over_quota_single_request_rejected_typed(self):
        sched = make_sched(8, quotas={"small": TenantQuota(max_nodes=2)})
        with pytest.raises(QuotaExceededError) as err:
            sched.check_request(JobSpec(tenant="small", size=16, nodes=4))
        assert err.value.tenant == "small"
        assert err.value.kind == "nodes"
        # other tenants may still make the same request
        sched.check_request(JobSpec(tenant="big", size=16, nodes=4))

    def test_max_running_quota_delays_admission(self):
        sched = make_sched(8, quotas={"t": TenantQuota(max_running=1)})
        queue = JobQueue()
        a, b = job(0, nodes=2), job(1, nodes=2)
        queue.enqueue(a)
        queue.enqueue(b)
        drv = Driver(sched, {a.id: 1.0, b.id: 1.0})
        sched.pump(queue, 0.0, drv(0.0))
        assert drv.order == [a.id]       # b held back by max_running=1
        assert queue.pending == [b]
        sched.release(a.id)
        sched.pump(queue, 1.0, drv(1.0))
        assert drv.order == [a.id, b.id]


class TestBackfill:
    def make_blocked_head(self):
        """4-node cluster: A holds all nodes until t=10; B (4 nodes) waits."""
        sched = make_sched(4, seed=1)
        queue = JobQueue()
        a = job(0, nodes=4)
        b = job(1, nodes=4, budget=50.0)
        queue.enqueue(a)
        durations = {a.id: 10.0}
        drv = Driver(sched, durations)
        sched.pump(queue, 0.0, drv(0.0))
        queue.enqueue(b)
        sched.pump(queue, 0.0, drv(0.0))
        assert queue.head is b           # blocked: zero free nodes
        return sched, queue, drv, a, b

    def test_reservation_is_exact(self):
        sched, queue, _, _a, b = self.make_blocked_head()
        assert sched.reservation_time(b, now=1.0) == 10.0
        assert sched.reservations[b.id] == 10.0

    def test_short_budget_job_backfills(self):
        sched, queue, drv, a, b = self.make_blocked_head()
        sched.release(a.id)              # 4 nodes free at t=2, B admissible
        # ...but hold 2 of them with a fresh long job so B stays blocked
        c = job(2, nodes=2)
        queue.pending.insert(0, c)       # c ahead of b
        drv.durations[c.id] = 8.0        # c busy until t=10
        sched.pump(queue, 2.0, drv(2.0))
        assert queue.head is b
        # d fits the 2 free nodes now and its budget ends before b's
        # reservation (t=10): 2.0 + 6.0 <= 10.0 -> backfill
        d = job(3, nodes=2, budget=6.0)
        queue.enqueue(d)
        drv.durations[d.id] = 1.0
        granted = sched.pump(queue, 2.0, drv(2.0))
        assert [l.job_id for l in granted] == [d.id]
        assert granted[0].backfilled
        assert granted[0].head_reservation == 10.0
        assert sched.backfills == 1

    def test_long_budget_job_does_not_backfill(self):
        sched, queue, drv, a, b = self.make_blocked_head()
        sched.release(a.id)
        c = job(2, nodes=2)
        queue.pending.insert(0, c)
        drv.durations[c.id] = 8.0
        sched.pump(queue, 2.0, drv(2.0))
        # e fits now but its budget (2.0 + 20.0) overruns b's reservation
        e = job(4, nodes=2, budget=20.0)
        queue.enqueue(e)
        drv.durations[e.id] = 1.0
        assert sched.pump(queue, 2.0, drv(2.0)) == []
        assert sched.backfills == 0
        assert queue.pending == [b, e]   # FIFO order intact

    def test_backfill_never_starves_head(self):
        """The promised reservation is met even with backfill traffic."""
        sched, queue, drv, a, b = self.make_blocked_head()
        d = job(3, nodes=2, budget=3.0)
        # A still holds everything; d cannot fit *now*, so no backfill
        queue.enqueue(d)
        assert sched.pump(queue, 1.0, drv(1.0)) == []
        sched.release(a.id)
        drv.durations[d.id] = 2.0
        drv.durations[b.id] = 1.0
        # t=4: b needs 4 nodes, all free -> b admitted first (FIFO), then d
        granted = sched.pump(queue, 4.0, drv(4.0))
        assert [l.job_id for l in granted] == [b.id]
        promised = sched.reservations[b.id]
        assert granted[0].t_start <= promised


class TestDeterminism:
    def play(self, seed):
        sched = make_sched(8, seed=seed)
        queue = JobQueue()
        jobs = [job(i, nodes=(i % 2) + 1) for i in range(6)]
        durations = {j.id: 1.0 + 0.1 * i for i, j in enumerate(jobs)}
        drv = Driver(sched, durations)
        leases = []
        for t, j in enumerate(jobs):
            queue.enqueue(j)
            leases += sched.pump(queue, float(t), drv(float(t)))
        for j in jobs:
            if j.id in sched.active:
                sched.release(j.id)
        return drv.order, [(l.job_id, l.nodes) for l in leases]

    def test_same_seed_same_assignments(self):
        assert self.play(42) == self.play(42)

    def test_different_seed_different_node_choice(self):
        # admission order is seed-independent; the node *sets* are the
        # seeded tie-break and should differ for some seed pair
        order_a, leases_a = self.play(1)
        order_b, leases_b = self.play(2)
        assert order_a == order_b
        assert any(na != nb for (_, na), (_, nb) in zip(leases_a, leases_b))


class TestAccounting:
    def test_utilization(self):
        sched = make_sched(4)
        queue = JobQueue()
        a = job(0, nodes=2)
        queue.enqueue(a)
        drv = Driver(sched, {a.id: 5.0})
        sched.pump(queue, 0.0, drv(0.0))
        sched.release(a.id)
        # 2 nodes x 5s over 4 nodes x 10s
        assert sched.utilization(10.0) == pytest.approx(0.25)
        assert sched.utilization(0.0) == 0.0
