"""Soak-harness tests: the five invariants over a 200-job mixed workload,
plus targeted quota/admission stress and slot-leak accounting."""

import pytest

from repro.chaos.invariants import check_quiescent
from repro.service import JobSpec, QuotaExceededError, SageService, TenantQuota
from repro.service.soak import (
    SERVICE_BASELINE,
    check_determinism,
    check_isolation,
    check_quota_and_starvation,
    check_slots,
    check_telemetry,
    default_quotas,
    generate_workload,
    run_soak,
)


class TestWorkloadGenerator:
    def test_deterministic(self):
        assert generate_workload(40, 5) == generate_workload(40, 5)
        assert generate_workload(40, 5) != generate_workload(40, 6)

    def test_specs_are_valid_and_mixed(self):
        workload = generate_workload(120, 11)
        apps = set()
        tenants = set()
        for spec, at in workload:
            spec.validate()
            assert at >= 0.0
            apps.add(spec.app)
            tenants.add(spec.tenant)
        assert apps == {"fft2d", "corner_turn"}
        assert "burst" in tenants and len(tenants) == 4

    def test_arrivals_monotonic(self):
        times = [at for _, at in generate_workload(50, 3)]
        assert times == sorted(times)


@pytest.fixture(scope="module")
def soak_200():
    """One 200-job soak shared by the invariant tests (full checks on)."""
    return run_soak(jobs=200, seed=7)


class TestSoak200:
    def test_all_five_invariants_hold(self, soak_200):
        assert soak_200.invariants == {
            "isolation": True,
            "determinism": True,
            "quota_no_starvation": True,
            "zero_leaked_slots": True,
            "telemetry": True,
        }
        assert soak_200.violations == []
        assert soak_200.ok

    def test_workload_actually_exercised_the_scheduler(self, soak_200):
        # the tuned workload must hit every interesting path, or the
        # invariants above are vacuous
        assert soak_200.completed > 100
        assert soak_200.backfills > 0
        assert soak_200.rejected > 0              # queue-depth rejections
        assert soak_200.rejected_at_submit > 0    # node-quota rejections
        assert soak_200.budget_kills > 0
        assert soak_200.utilization > 0.5
        assert soak_200.jobs_per_sec > 0
        assert soak_200.completed + soak_200.failed + soak_200.rejected \
            == soak_200.submitted

    def test_report_dict_embeds_baseline(self, soak_200):
        doc = soak_200.to_dict()
        assert doc["baseline"] == SERVICE_BASELINE
        assert doc["ok"] is True
        assert doc["bus_digest"]


class TestQuotaStress:
    def test_over_quota_tenant_rejected_under_pressure(self):
        svc = SageService(nodes=4, seed=1,
                          quotas={"greedy": TenantQuota(
                              max_nodes=2, max_running=1, max_queued=2)})
        # single requests over the node ceiling bounce synchronously
        with pytest.raises(QuotaExceededError):
            svc.submit(JobSpec(tenant="greedy", size=16, nodes=4))
        # a pile of legal requests: 1 running + 2 queued fit, rest bounce
        ids = []
        rejected = 0
        for k in range(8):
            try:
                ids.append(svc.submit(
                    JobSpec(tenant="greedy", size=16, nodes=2,
                            iterations=3), at=k * 1e-6))
            except QuotaExceededError:
                rejected += 1
        svc.run()
        states = [svc.job(i).state for i in ids]
        arrival_rejects = states.count("rejected")
        assert arrival_rejects > 0
        assert states.count("completed") == len(ids) - arrival_rejects
        # at no instant did greedy hold more than max_nodes
        assert check_quota_and_starvation(svc) == []
        assert svc.check_clean() == []

    def test_slot_accounting_returns_to_zero_after_soak(self):
        """Reuses the chaos-harness leak checks against the shared cluster."""
        from repro.service.soak import _build_service, _drive

        svc = _build_service(8, 3)
        _drive(svc, generate_workload(200, 3))
        assert check_quiescent(svc.env, svc.cluster) == []
        assert svc.cluster.slot_census() == {i: 0 for i in range(8)}
        assert svc.scheduler.active == {}
        assert svc.scheduler.grants == svc.scheduler.releases
        assert check_slots(svc) == []

    def test_backfill_never_starved_fifo_older_jobs(self):
        from repro.service.soak import _build_service, _drive

        svc = _build_service(8, 7)
        _drive(svc, generate_workload(300, 7))
        assert svc.scheduler.backfills > 0
        # every reservation promise was honoured
        for job_id, promised in svc.scheduler.reservations.items():
            job = svc.jobs[job_id]
            if job.start_time is not None:
                assert job.start_time <= promised + 1e-9, job_id


class TestInvariantCheckers:
    """The checkers themselves must be able to fail (not vacuous)."""

    def test_isolation_checker_catches_divergence(self):
        from repro.service.soak import _build_service, _drive

        svc = _build_service(4, 1)
        _drive(svc, generate_workload(5, 1))
        victim = next(j for j in svc.jobs.values() if j.state == "completed")
        object.__setattr__(victim.result, "trace_digest", "forged")
        violations, _ = check_isolation(svc)
        assert any("trace_digest" in v for v in violations)

    def test_determinism_checker_catches_seed_drift(self):
        from repro.service.soak import _build_service, _drive

        workload = generate_workload(12, 5)
        svc = _build_service(8, seed=5)
        _drive(svc, workload)
        # replay claims seed 6: node tie-breaks (and so the stream) differ
        assert check_determinism(svc, workload, nodes=8, seed=6)

    def test_telemetry_checker_catches_cross_job_contamination(self):
        from repro.service.soak import _build_service, _drive

        svc = _build_service(4, 1)
        _drive(svc, generate_workload(4, 1))
        done = [j for j in svc.jobs.values() if j.result is not None]
        # republish one job's telemetry under another job's topic
        a, b = done[0], done[1]
        svc.bus.publish(f"job.{b.id}.probes", "telemetry", time=99.0,
                        job=a.id, events=1, sim_events=1, digest="x")
        violations = check_telemetry(svc)
        assert any("contamination" in v or "expected exactly 1" in v
                   for v in violations)

    def test_quota_checker_catches_overcommit(self):
        from repro.service.scheduler import Lease
        from repro.service.soak import _build_service, _drive

        svc = _build_service(4, 2)
        _drive(svc, generate_workload(4, 2))
        svc.scheduler.quotas["phantom"] = TenantQuota(max_nodes=1)
        svc.scheduler.history.append(Lease(
            job_id="jx", tenant="phantom", nodes=(0, 1),
            t_start=0.0, t_end=1.0))
        violations = check_quota_and_starvation(svc)
        assert any("phantom" in v for v in violations)


def test_soak_default_quotas_clamp_burst():
    quotas = default_quotas()
    assert quotas["burst"].max_nodes == 2
    assert quotas["burst"].max_queued is not None


class TestExperimentAndBench:
    def test_r5_experiment_quick(self, tmp_path, capsys):
        from repro.experiments.service_soak import main

        out = tmp_path / "R5.txt"
        assert main(["--quick", "-o", str(out)]) == 0
        text = out.read_text()
        assert "SAGE-as-a-service" in text
        assert "burst" in text
        assert "5/5" in text            # all invariants held

    def test_r5_tenant_breakdown_accounts_everyone(self):
        from repro.experiments.service_soak import run_tenant_breakdown

        rows = run_tenant_breakdown(jobs=40, seed=7)
        assert sum(r.submitted for r in rows) == 40
        burst = next(r for r in rows if r.tenant == "burst")
        open_rows = [r for r in rows if r.tenant != "burst"]
        # the quota-clamped tenant consumed less than the open tenants' sum
        assert burst.node_seconds < sum(r.node_seconds for r in open_rows)

    def test_bench_tracked_stat(self):
        from repro.perf.bench import run_service_soak
        from repro.perf.registry import PerfRegistry

        registry = PerfRegistry()
        summary = run_service_soak(registry, jobs=25, seed=7)
        assert summary["jobs_per_sec"] > 0
        assert summary["executed"] >= summary["completed"] > 0
        snap = registry.snapshot()
        assert snap["counters"]["service.jobs"] == summary["executed"]
        assert "service.soak_s" in snap["timers"]
