"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.machine.simulator import (
    Environment,
    Interrupt,
    Resource,
    SimulationError,
    Store,
)


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(1.5)
        yield env.timeout(2.5)
        return env.now

    p = env.process(proc())
    assert env.run(until=p) == pytest.approx(4.0)
    assert env.now == pytest.approx(4.0)


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_timeout_carries_value():
    env = Environment()

    def proc():
        v = yield env.timeout(1, value="hello")
        return v

    assert env.run(until=env.process(proc())) == "hello"


def test_same_instant_events_fire_in_schedule_order():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in "abc":
        env.process(proc(tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_event_succeed_wakes_waiter_with_value():
    env = Environment()
    ev = env.event()
    results = []

    def waiter():
        v = yield ev
        results.append((env.now, v))

    def trigger():
        yield env.timeout(3)
        ev.succeed(42)

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert results == [(3.0, 42)]


def test_event_fail_raises_in_waiter():
    env = Environment()
    ev = env.event()

    def waiter():
        with pytest.raises(ValueError, match="boom"):
            yield ev
        return "caught"

    def trigger():
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    p = env.process(waiter())
    env.process(trigger())
    assert env.run(until=p) == "caught"


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_waiting_on_process_returns_its_value():
    env = Environment()

    def child():
        yield env.timeout(2)
        return "done"

    def parent():
        v = yield env.process(child())
        return (env.now, v)

    assert env.run(until=env.process(parent())) == (2.0, "done")


def test_process_exception_propagates_to_parent():
    env = Environment()

    def child():
        yield env.timeout(1)
        raise RuntimeError("child failed")

    def parent():
        try:
            yield env.process(child())
        except RuntimeError as e:
            return str(e)

    assert env.run(until=env.process(parent())) == "child failed"


def test_unhandled_process_exception_escapes_run():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise KeyError("unhandled")

    env.process(bad())
    with pytest.raises(KeyError):
        env.run()


def test_yielding_non_event_is_an_error():
    env = Environment()

    def bad():
        yield 5

    env.process(bad())
    with pytest.raises(SimulationError, match="expected an Event"):
        env.run()


def test_all_of_collects_values():
    env = Environment()

    def proc():
        vals = yield env.all_of([env.timeout(1, "a"), env.timeout(3, "b"), env.timeout(2, "c")])
        return (env.now, vals)

    assert env.run(until=env.process(proc())) == (3.0, ["a", "b", "c"])


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc():
        vals = yield env.all_of([])
        return vals

    assert env.run(until=env.process(proc())) == []


def test_run_until_time_stops_clock_exactly():
    env = Environment()
    seen = []

    def proc():
        while True:
            yield env.timeout(1)
            seen.append(env.now)

    env.process(proc())
    env.run(until=3.5)
    assert seen == [1.0, 2.0, 3.0]
    assert env.now == pytest.approx(3.5)


def test_run_until_event_deadlock_detected():
    env = Environment()
    ev = env.event()

    def waiter():
        yield ev

    p = env.process(waiter())
    with pytest.raises(SimulationError, match="deadlock"):
        env.run(until=p)


def test_interrupt_delivers_cause():
    env = Environment()

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt as i:
            return ("interrupted", env.now, i.cause)

    def interrupter(target):
        yield env.timeout(5)
        target.interrupt("wake up")

    p = env.process(sleeper())
    env.process(interrupter(p))
    assert env.run(until=p) == ("interrupted", 5.0, "wake up")


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for i in range(3):
            yield env.timeout(1)
            yield store.put(i)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((env.now, item))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [(1.0, 0), (2.0, 1), (3.0, 2)]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)

    def consumer():
        item = yield store.get()
        return (env.now, item)

    def producer():
        yield env.timeout(7)
        yield store.put("x")

    p = env.process(consumer())
    env.process(producer())
    assert env.run(until=p) == (7.0, "x")


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer():
        yield store.put("a")
        log.append(("put-a", env.now))
        yield store.put("b")  # blocks until 'a' consumed
        log.append(("put-b", env.now))

    def consumer():
        yield env.timeout(4)
        item = yield store.get()
        log.append(("got", item, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert ("put-a", 0.0) in log
    assert ("put-b", 4.0) in log


def test_store_multiple_getters_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def getter(tag):
        item = yield store.get()
        got.append((tag, item))

    def putter():
        yield env.timeout(1)
        yield store.put(1)
        yield store.put(2)

    env.process(getter("first"))
    env.process(getter("second"))
    env.process(putter())
    env.run()
    assert got == [("first", 1), ("second", 2)]


def test_resource_serialises():
    env = Environment()
    res = Resource(env, capacity=1)
    spans = []

    def worker(tag):
        start_req = env.now
        yield res.request()
        start = env.now
        yield env.timeout(10)
        res.release()
        spans.append((tag, start_req, start, env.now))

    for tag in ("a", "b"):
        env.process(worker(tag))
    env.run()
    assert spans[0] == ("a", 0.0, 0.0, 10.0)
    assert spans[1] == ("b", 0.0, 10.0, 20.0)


def test_resource_capacity_two_runs_in_parallel():
    env = Environment()
    res = Resource(env, capacity=2)
    done = []

    def worker(tag):
        yield res.request()
        yield env.timeout(10)
        res.release()
        done.append((tag, env.now))

    for tag in ("a", "b", "c"):
        env.process(worker(tag))
    env.run()
    assert done == [("a", 10.0), ("b", 10.0), ("c", 20.0)]


def test_resource_release_without_request_raises():
    env = Environment()
    res = Resource(env)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_use_helper():
    env = Environment()
    res = Resource(env)

    def worker():
        yield from res.use(5.0)
        return env.now

    assert env.run(until=env.process(worker())) == 5.0
    assert res.count == 0


def test_step_with_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_run_until_past_time_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(SimulationError):
        env.run(until=5.0)
