"""Tests for the event-queue fast path (the deque/heap split).

The :class:`Environment` keeps three structures: the time-ordered heap for
future events, and two same-instant deques (priority-0 callback hand-offs
and priority-1 triggered events).  These tests pin the ordering contract —
identical to a single totally-ordered heap keyed by ``(time, priority,
seq)`` — plus the ``events_processed`` counter the bench harness reads.
"""

import pytest

from repro.machine.simulator import Environment, SimulationError


def test_events_processed_counts_every_step():
    env = Environment()
    assert env.events_processed == 0

    def proc(env):
        yield env.timeout(1.0)
        yield env.timeout(0.0)

    env.process(proc(env))
    env.run()
    # process-start event + two timeouts + at least the resume callbacks
    assert env.events_processed >= 3
    before = env.events_processed
    env.timeout(0.5)
    env.run()
    assert env.events_processed == before + 1


def test_zero_delay_timeouts_fire_in_creation_order():
    env = Environment()
    order = []

    def waiter(env, tag, delay):
        yield env.timeout(delay)
        order.append(tag)

    # interleave zero-delay (deque) and same-instant-later (heap) waiters
    env.process(waiter(env, "a", 0.0))
    env.process(waiter(env, "b", 0.0))
    env.process(waiter(env, "c", 0.0))
    env.run()
    assert order == ["a", "b", "c"]


def test_same_instant_heap_and_deque_interleave_by_seq():
    """A future event that lands at t and a zero-delay event created at t
    must fire in seq order, even though they live in different structures."""
    env = Environment()
    order = []

    def driver(env):
        # schedule X to fire at t=1.0 via the heap
        def x(env):
            yield env.timeout(1.0)
            order.append("x")

        env.process(x(env))
        yield env.timeout(1.0)
        # now at t=1.0; a zero-delay event created *after* x was scheduled
        def y(env):
            yield env.timeout(0.0)
            order.append("y")

        env.process(y(env))
        yield env.timeout(0.0)
        order.append("driver")

    env.process(driver(env))
    env.run()
    # x was scheduled first (lower seq) -> fires before driver's post-wake
    # continuation and before y
    assert order.index("x") < order.index("y")


def test_clock_only_advances_never_rewinds():
    env = Environment()
    seen = []

    def proc(env, delay):
        yield env.timeout(delay)
        seen.append(env.now)
        yield env.timeout(0.0)
        seen.append(env.now)

    for d in (0.5, 0.0, 1.5, 0.5):
        env.process(proc(env, d))
    env.run()
    assert seen == sorted(seen)
    assert env.now == 1.5


def test_run_raises_when_all_three_structures_empty():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_run_until_event_detects_deadlock():
    env = Environment()
    never = env.event()  # never succeeds
    with pytest.raises(SimulationError):
        env.run(until=never)


def test_run_until_event_returns_value_through_fast_path():
    env = Environment()

    def proc(env):
        yield env.timeout(0.0)
        return "done"

    p = env.process(proc(env))
    assert env.run(until=p) == "done"


def test_run_until_horizon_stops_between_deque_drain_and_future_heap():
    env = Environment()
    fired = []

    def proc(env, tag, delay):
        yield env.timeout(delay)
        fired.append(tag)

    env.process(proc(env, "now", 0.0))
    env.process(proc(env, "later", 10.0))
    env.run(until=5.0)
    assert fired == ["now"]
    assert env.now == 5.0
    env.run()
    assert fired == ["now", "later"]


def test_priority0_callbacks_run_before_triggered_events():
    """succeed() hand-off callbacks (imm0) must drain before the next
    triggered event (imm1), matching the old priority-0 < priority-1 heap
    ordering."""
    env = Environment()
    order = []

    def proc(env):
        ev = env.event()
        ev.add_callback(lambda e: order.append("cb"))
        ev.succeed()
        t = env.timeout(0.0)
        t.add_callback(lambda e: order.append("timeout"))
        yield env.timeout(0.0)

    env.process(proc(env))
    env.run()
    assert order == ["cb", "timeout"]


def test_environment_has_slots():
    env = Environment()
    with pytest.raises(AttributeError):
        env.unexpected_attribute = 1
