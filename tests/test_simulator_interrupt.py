"""Interrupt-safety regressions for the simulation kernel.

Two historical bugs, now load-bearing for fault recovery:

* ``Process.interrupt()`` on a process whose resume was already queued (it
  was waiting on an event processed earlier, whose scheduled callback cannot
  be cancelled) must not leave a stale ``_resume`` on the event the process
  re-suspends on — or the process is stepped a second time later.
* A process interrupted while suspended on a ``Resource`` request must give
  the slot back (granted) or withdraw the request (queued); otherwise the
  resource leaks and every later requester deadlocks.
"""

import pytest

from repro.machine.simulator import (
    AnyOf,
    Environment,
    Interrupt,
    Resource,
    SimulationError,
)


class TestInterruptRaces:
    def test_interrupt_races_queued_resume(self):
        """Interrupt a process whose resume is already in the event queue.

        The victim yields an event processed in a *previous* instant, so its
        resume is an un-cancellable scheduled callback.  The interrupt lands
        after that resume has run and the victim re-suspended on a new event;
        the interrupt must detach from the new target, or its stale callback
        would step the victim a second time at t=10."""
        env = Environment()
        done = env.event()
        done.succeed()
        env.run(until=done)  # `done` is processed before the victim exists

        order = []

        def victim():
            order.append("start")
            yield done  # already processed: resume is queued, not attached
            order.append("resumed")
            try:
                yield env.timeout(10)
                order.append("slept-10")
            except Interrupt as intr:
                order.append(f"interrupted:{intr.cause}")
                # Still suspended at t=10 when the abandoned timeout fires: a
                # stale callback would resume this wait 5s early.
                yield env.timeout(15)
                order.append(("slept", env.now))

        def attacker():
            # Also resumed via a queued callback — scheduled *before* the
            # victim's, so the interrupt is issued while the victim's resume
            # is still sitting in the queue.
            yield done
            v.interrupt("race")

        env.process(attacker())
        v = env.process(victim())
        env.run()
        assert order == ["start", "resumed", "interrupted:race", ("slept", 15.0)]
        assert v.processed and v.ok

    def test_interrupt_while_anyof_already_triggered(self):
        """Interrupt delivered in the same instant an AnyOf child fires:
        the Interrupt wins and the triggered AnyOf must not resume the
        process a second time."""
        env = Environment()
        ev = env.event()
        got = []

        def waiter():
            try:
                which, value = yield env.any_of([ev, env.timeout(5)])
                got.append(("value", which, value))
            except Interrupt as intr:
                got.append(("interrupt", intr.cause))
                yield env.timeout(1)
                got.append(("done",))

        p = env.process(waiter())

        def driver():
            yield env.timeout(1)
            ev.succeed("data")        # the AnyOf will fire this instant...
            p.interrupt("cancelled")  # ...but the interrupt detaches first

        env.process(driver())
        env.run()
        assert got == [("interrupt", "cancelled"), ("done",)]

    def test_interrupt_finished_process_raises(self):
        env = Environment()

        def quick():
            yield env.timeout(0)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError, match="finished process"):
            p.interrupt()

    def test_anyof_late_straggler_after_interrupt_is_harmless(self):
        """After an interrupted wait, the AnyOf's remaining children firing
        later must not touch the (re-suspended or finished) process."""
        env = Environment()
        slow = env.event()
        got = []

        def waiter():
            try:
                yield env.any_of([slow, env.timeout(100)])
                got.append("value")
            except Interrupt:
                got.append("interrupt")
            yield env.timeout(1)
            got.append("after")

        p = env.process(waiter())

        def driver():
            yield env.timeout(2)
            p.interrupt()
            yield env.timeout(5)
            slow.succeed()  # straggler: waiter is elsewhere by now

        env.process(driver())
        env.run()
        assert got == ["interrupt", "after"]


class TestResourceCancel:
    def test_queued_request_withdrawn_on_interrupt(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder():
            yield from res.use(10)

        def waiter():
            try:
                yield from res.use(1)
            except Interrupt:
                pass

        env.process(holder())
        w = env.process(waiter())

        def driver():
            yield env.timeout(1)
            w.interrupt()

        env.process(driver())
        env.run()
        assert res.count == 0
        assert res.queue_length == 0

    def test_holder_interrupted_mid_use_releases_slot(self):
        env = Environment()
        res = Resource(env, capacity=1)
        acquired = []

        def holder():
            try:
                yield from res.use(100)
            except Interrupt:
                pass

        def successor():
            yield env.timeout(2)
            yield from res.use(1)
            acquired.append(env.now)

        h = env.process(holder())
        env.process(successor())

        def driver():
            yield env.timeout(1)
            h.interrupt()

        env.process(driver())
        env.run()
        # The successor got the slot right away at t=2 and held it 1s.
        assert acquired == [3]
        assert res.count == 0

    def test_cancel_granted_but_unconsumed_request(self):
        """A request granted at the same instant the requester is interrupted
        must be released, not leaked."""
        env = Environment()
        res = Resource(env, capacity=1)

        def victim():
            req = res.request()  # capacity free: granted immediately
            try:
                yield req
            except Interrupt:
                res.cancel(req)

        v = env.process(victim())

        def driver():
            v.interrupt()
            return
            yield  # pragma: no cover

        env.process(driver())
        env.run()
        assert res.count == 0

    def test_cancel_untracked_request_is_noop(self):
        env = Environment()
        res = Resource(env, capacity=1)
        stray = env.event()  # never a real request
        res.cancel(stray)
        assert res.count == 0 and res.queue_length == 0

    def test_anyof_is_exported(self):
        # Regression guard: AnyOf is public API for the timeout patterns.
        env = Environment()
        assert isinstance(env.any_of([env.timeout(1)]), AnyOf)
