"""Large-configuration stress tests: 16 nodes, deep chains, mixed
distributions — the shapes the paper's production users would build."""

import numpy as np

from repro.apps import MatrixProvider, benchmark_mapping, corner_turn_model, fft2d_model
from repro.core.codegen import generate_glue
from repro.core.model import (
    ApplicationModel,
    DataType,
    FunctionBlock,
    cyclic,
    round_robin_mapping,
    striped,
)
from repro.core.runtime import DEFAULT_CONFIG, SageRuntime
from repro.machine import Environment, SimCluster, cspi, sky


def test_sixteen_node_fft_correct():
    n, nodes = 64, 16
    provider = MatrixProvider(n, seed=21)
    app = fft2d_model(n, nodes)
    glue = generate_glue(app, benchmark_mapping(app, nodes), num_processors=nodes)
    env = Environment()
    cluster = SimCluster.from_platform(env, cspi(), nodes)
    result = SageRuntime(glue, cluster).run(iterations=1, input_provider=provider)
    np.testing.assert_allclose(result.full_result(0), np.fft.fft2(provider(0)), atol=2e-1)


def test_sixteen_node_hundred_iterations_timing():
    app = corner_turn_model(1024, 16)
    glue = generate_glue(app, benchmark_mapping(app, 16), num_processors=16)
    env = Environment()
    cluster = SimCluster.from_platform(env, sky(), 16)
    runtime = SageRuntime(glue, cluster, config=DEFAULT_CONFIG.timing_only())
    result = runtime.run(iterations=100)
    assert result.iterations == 100
    assert len(result.trace.by_kind("sink")) == 100 * 16
    # steady state: latencies flat under serial admission
    lats = result.latencies
    assert max(lats) - min(lats) < 1e-9


def test_deep_mixed_distribution_chain():
    """8 stages alternating striped/cyclic layouts over 8 nodes, exact data."""
    n, nodes = 32, 8
    t = DataType("m", "complex64", (n, n))
    app = ApplicationModel("deepchain")
    src = app.add_block(FunctionBlock("src", kernel="matrix_source", threads=nodes))
    src.add_out("out", t, striped(0))
    layouts = [
        striped(0), cyclic(0), striped(1), cyclic(1, block=2),
        striped(0), cyclic(0, block=4), striped(1), striped(0),
    ]
    prev = src
    for i, layout in enumerate(layouts):
        blk = app.add_block(FunctionBlock(f"s{i}", kernel="identity", threads=nodes))
        blk.add_in("in", t, layout)
        blk.add_out("out", t, layout)
        app.connect(prev.port("out"), blk.port("in"))
        prev = blk
    sink = app.add_block(FunctionBlock("sink", kernel="matrix_sink", threads=nodes))
    sink.add_in("in", t, striped(0))
    app.connect(prev.port("out"), sink.port("in"))

    provider = MatrixProvider(n, seed=22)
    glue = generate_glue(app, round_robin_mapping(app, nodes), num_processors=nodes)
    env = Environment()
    cluster = SimCluster.from_platform(env, cspi(), nodes)
    result = SageRuntime(glue, cluster).run(iterations=2, input_provider=provider)
    for k in range(2):
        np.testing.assert_array_equal(result.full_result(k), provider(k))


def test_many_iterations_memory_stays_bounded():
    """Buffer storage is freed as iterations drain (no unbounded growth)."""
    app = corner_turn_model(64, 4)
    glue = generate_glue(app, benchmark_mapping(app, 4), num_processors=4)
    env = Environment()
    cluster = SimCluster.from_platform(env, cspi(), 4)
    runtime = SageRuntime(glue, cluster, config=DEFAULT_CONFIG.timing_only())
    runtime.run(iterations=200)
    assert all(buf.live_iterations == 0 for buf in runtime.buffers)
    # arrival-event bookkeeping is bounded by messages, not unbounded state
    assert len(runtime._arrivals) <= sum(len(b.plan) for b in runtime.buffers) * 200
