"""Depth tests for substrate guarantees the upper layers quietly rely on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import benchmark_mapping, fft2d_model
from repro.core.codegen import generate_glue
from repro.core.runtime import DEFAULT_CONFIG, SageRuntime
from repro.machine import Environment, Resource, SimCluster, Store, cspi
from repro.mpi import MpiWorld


class TestMessageOrdering:
    def test_same_pair_same_tag_fifo(self):
        """Messages between one (src, dst, tag) triple arrive in send order."""
        env = Environment()
        world = MpiWorld(SimCluster.from_platform(env, cspi(), 2))

        def sender(comm):
            for i in range(10):
                yield from comm.send(i, dest=1, tag=4)

        def receiver(comm):
            got = []
            for _ in range(10):
                got.append((yield from comm.recv(source=0, tag=4)))
            return got

        world.spawn_rank(0, sender)
        p = world.spawn_rank(1, receiver)
        world.env.run(until=p)
        assert p.value == list(range(10))

    def test_any_source_receives_all_eventually(self):
        env = Environment()
        world = MpiWorld(SimCluster.from_platform(env, cspi(), 4))

        def sender(comm):
            for i in range(3):
                yield from comm.send((comm.rank, i), dest=3)

        def receiver(comm):
            got = set()
            for _ in range(9):
                got.add((yield from comm.recv()))
            return got

        for r in range(3):
            world.spawn_rank(r, sender)
        p = world.spawn_rank(3, receiver)
        world.env.run(until=p)
        assert p.value == {(r, i) for r in range(3) for i in range(3)}


class TestStoreEdges:
    def test_put_to_waiting_getter_bypasses_queue(self):
        env = Environment()
        store = Store(env, capacity=1)
        order = []

        def getter():
            item = yield store.get()
            order.append(("got", item))

        def putter():
            yield env.timeout(1)
            yield store.put("x")
            order.append(("put-done", env.now))

        env.process(getter())
        env.process(putter())
        env.run()
        assert ("got", "x") in order
        assert len(store) == 0

    def test_capacity_frees_in_fifo_order(self):
        env = Environment()
        store = Store(env, capacity=1)
        done = []

        def producer(tag):
            yield store.put(tag)
            done.append(tag)

        def consumer():
            for _ in range(3):
                yield env.timeout(1)
                yield store.get()

        for tag in ("a", "b", "c"):
            env.process(producer(tag))
        env.process(consumer())
        env.run()
        assert done == ["a", "b", "c"]


class TestResourceEdges:
    def test_release_hands_slot_directly_to_waiter(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def holder():
            yield res.request()
            yield env.timeout(5)
            res.release()

        def waiter(tag):
            yield res.request()
            order.append((tag, env.now))
            yield env.timeout(1)
            res.release()

        env.process(holder())
        env.process(waiter("w1"))
        env.process(waiter("w2"))
        env.run()
        assert order == [("w1", 5.0), ("w2", 6.0)]
        assert res.count == 0

    def test_queue_length_visible(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder():
            yield res.request()
            yield env.timeout(10)
            res.release()

        def waiter():
            yield res.request()
            res.release()

        env.process(holder())
        env.process(waiter())
        env.process(waiter())
        env.run(until=1.0)
        assert res.queue_length == 2


class TestAdmissionInteractions:
    def make_runtime(self, config):
        app = fft2d_model(64, 2)
        glue = generate_glue(app, benchmark_mapping(app, 2), num_processors=2)
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), 2)
        return SageRuntime(glue, cluster, config=config)

    def test_deeper_pipelines_never_slower_throughput(self):
        periods = {}
        for depth in (1, 2, 4):
            runtime = self.make_runtime(
                DEFAULT_CONFIG.timing_only().pipelined(depth)
            )
            periods[depth] = runtime.run(iterations=10).period
        assert periods[2] <= periods[1] * 1.001
        assert periods[4] <= periods[2] * 1.001

    def test_source_interval_with_depth_one(self):
        runtime = self.make_runtime(DEFAULT_CONFIG.timing_only())
        base = runtime.run(iterations=4)
        interval = base.mean_latency * 3
        runtime2 = self.make_runtime(DEFAULT_CONFIG.timing_only())
        throttled = runtime2.run(iterations=4, source_interval=interval)
        assert throttled.period == pytest.approx(interval, rel=0.02)
        # throttling doesn't change per-data-set latency
        assert throttled.mean_latency == pytest.approx(base.mean_latency, rel=1e-9)


class TestCollectivePayloadProperties:
    @given(
        st.lists(
            st.one_of(
                st.integers(-1000, 1000),
                st.text(max_size=8),
                st.tuples(st.integers(), st.integers()),
            ),
            min_size=4,
            max_size=4,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_allgather_arbitrary_payloads(self, payloads):
        env = Environment()
        world = MpiWorld(SimCluster.from_platform(env, cspi(), 4))

        def prog(comm):
            out = yield from comm.allgather(payloads[comm.rank])
            return out

        world.spawn(prog)
        results = world.run()
        assert all(r == payloads for r in results)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_alltoall_random_matrices_roundtrip(self, seed):
        """alltoall followed by its inverse permutation restores the blocks."""
        rng = np.random.default_rng(seed)
        blocks_by_rank = [
            [rng.normal(size=3) for _ in range(4)] for _ in range(4)
        ]
        env = Environment()
        world = MpiWorld(SimCluster.from_platform(env, cspi(), 4))

        def prog(comm):
            received = yield from comm.alltoall(list(blocks_by_rank[comm.rank]))
            # send everything straight back
            back = yield from comm.alltoall(received)
            return back

        world.spawn(prog)
        results = world.run()
        for rank, back in enumerate(results):
            for d in range(4):
                np.testing.assert_array_equal(back[d], blocks_by_rank[rank][d])
