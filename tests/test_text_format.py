"""Textual Designer format tests: parse, render, round-trip, execute."""

import numpy as np
import pytest

from repro.apps import MatrixProvider, benchmark_mapping, fft2d_model
from repro.core.codegen import generate_glue
from repro.core.model import (
    ModelError,
    TextFormatError,
    cyclic,
    parse_application,
    render_application,
    striped,
    validate_application,
)
from repro.core.runtime import SageRuntime
from repro.machine import Environment, SimCluster, cspi

FFT_TEXT = """
# the parallel 2D FFT, as a Designer text capture
application fft2d_text

datatype cm complex64 32x32

block src kernel=matrix_source threads=2 param.n=32
  out out cm striped(0)

block rowfft kernel=fft_rows threads=2
  in in cm striped(0)
  out out cm striped(0)

block colfft kernel=fft_cols threads=2
  in in cm striped(1)
  out out cm striped(1)

block sink kernel=matrix_sink threads=2
  in in cm striped(1)

connect src.out -> rowfft.in
connect rowfft.out -> colfft.in
connect colfft.out -> sink.in
"""


class TestParsing:
    def test_structure(self):
        app = parse_application(FFT_TEXT)
        assert app.name == "fft2d_text"
        assert [i.path for i in app.function_instances()] == [
            "src", "rowfft", "colfft", "sink"
        ]
        assert app.instance_by_path("src").block.params == {"n": 32}
        assert app.children["colfft"].port("in").striping == striped(1)
        validate_application(app)

    def test_cyclic_striping_forms(self):
        text = FFT_TEXT.replace("in in cm striped(0)", "in in cm cyclic(0)")
        app = parse_application(text)
        assert app.children["rowfft"].port("in").striping == cyclic(0)
        text2 = FFT_TEXT.replace("in in cm striped(0)", "in in cm cyclic(0, 4)")
        app2 = parse_application(text2)
        assert app2.children["rowfft"].port("in").striping == cyclic(0, block=4)

    def test_param_value_types(self):
        text = """
application p
datatype v float32 8x8
block b kernel=k param.i=3 param.f=2.5 param.s=hello param.t=true
  out o v replicated
block c kernel=matrix_sink
  in i v replicated
connect b.o -> c.i
"""
        app = parse_application(text)
        assert app.children["b"].params == {"i": 3, "f": 2.5, "s": "hello", "t": True}

    @pytest.mark.parametrize("bad,msg", [
        ("application a\napplication b", "duplicate"),
        ("block x kernel=k", "before 'application'"),
        ("application a\nblock x", "kernel"),
        ("application a\ndatatype t complex64 4y4", "bad datatype"),
        ("application a\nin p t replicated", "before any block"),
        ("application a\nfoo bar", "unknown keyword"),
        ("application a\nconnect a.b c.d", "usage: connect"),
        ("", "no 'application'"),
    ])
    def test_syntax_errors(self, bad, msg):
        with pytest.raises(TextFormatError, match=msg):
            parse_application(bad)

    def test_bad_striping(self):
        text = FFT_TEXT.replace("striped(0)", "diagonal(2)", 1)
        with pytest.raises(TextFormatError, match="bad striping"):
            parse_application(text)

    def test_unknown_datatype_reference(self):
        text = FFT_TEXT.replace("out out cm striped(0)", "out out ghost striped(0)", 1)
        with pytest.raises(TextFormatError, match="unknown datatype"):
            parse_application(text)

    def test_unknown_block_in_connect(self):
        text = FFT_TEXT + "\nconnect ghost.out -> sink.in\n"
        with pytest.raises(TextFormatError, match="unknown block"):
            parse_application(text)

    def test_line_numbers_reported(self):
        try:
            parse_application("application a\nbogus line here")
        except TextFormatError as e:
            assert e.line_no == 2
        else:
            pytest.fail("expected TextFormatError")


class TestRoundTrip:
    def test_parse_render_parse_stable(self):
        app1 = parse_application(FFT_TEXT)
        text = render_application(app1)
        app2 = parse_application(text)
        assert render_application(app2) == text

    def test_render_programmatic_model(self):
        app = fft2d_model(64, 4)
        text = render_application(app)
        restored = parse_application(text)
        assert [i.path for i in restored.function_instances()] == [
            i.path for i in app.function_instances()
        ]
        # glue generated from both is identical up to the model name
        g1 = generate_glue(app, benchmark_mapping(app, 4), num_processors=4)
        g2 = generate_glue(restored, benchmark_mapping(restored, 4), num_processors=4)
        assert g1.function_table == g2.function_table
        assert g1.logical_buffers == g2.logical_buffers

    def test_hierarchical_models_rejected(self):
        from repro.core.model import ApplicationModel, CompositeBlock

        app = ApplicationModel("h")
        app.add_block(CompositeBlock("inner"))
        with pytest.raises(ModelError, match="flat models only"):
            render_application(app)


class TestTextModelExecutes:
    def test_parsed_model_runs_correctly(self):
        app = parse_application(FFT_TEXT)
        nodes = 2
        glue = generate_glue(app, benchmark_mapping(app, nodes), num_processors=nodes)
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), nodes)
        runtime = SageRuntime(glue, cluster)
        provider = MatrixProvider(32, seed=2)
        result = runtime.run(iterations=1, input_provider=provider)
        np.testing.assert_allclose(
            result.full_result(0), np.fft.fft2(provider(0)), atol=1e-1
        )
