"""Model validation tests."""

import pytest

from repro.core.model import (
    ApplicationModel,
    DataType,
    FunctionBlock,
    ModelError,
    striped,
    validate_application,
)

MTYPE = DataType("m", "complex64", (16, 16))


def minimal_app():
    app = ApplicationModel("app")
    src = app.add_block(FunctionBlock("src", kernel="matrix_source"))
    src.add_out("out", MTYPE)
    snk = app.add_block(FunctionBlock("snk", kernel="matrix_sink"))
    snk.add_in("in", MTYPE)
    app.connect(src.port("out"), snk.port("in"))
    return app


def test_valid_app_passes():
    assert all(i.severity != "error" for i in validate_application(minimal_app()))


def test_empty_app_is_error():
    with pytest.raises(ModelError, match="no function blocks"):
        validate_application(ApplicationModel("empty"))


def test_dangling_input_is_error():
    app = minimal_app()
    lonely = app.add_block(FunctionBlock("lonely", kernel="k"))
    lonely.add_in("in", MTYPE)
    with pytest.raises(ModelError, match="not connected"):
        validate_application(app)


def test_dangling_output_is_only_warning():
    app = minimal_app()
    tee = app.add_block(FunctionBlock("tee", kernel="k"))
    tee.add_in("in", MTYPE)
    tee.add_out("unused", MTYPE)
    app.connect(app.children["src"].port("out"), tee.port("in"))
    # still strict-passes: unused OUT is a warning
    issues = validate_application(app, strict=False)
    warnings = [i for i in issues if i.severity == "warning"]
    assert any("not connected" in i.message for i in warnings)


def test_size_mismatch_is_error():
    app = ApplicationModel("app")
    src = app.add_block(FunctionBlock("src", kernel="k"))
    src.add_out("out", DataType("a", "complex64", (8, 8)))
    snk = app.add_block(FunctionBlock("snk", kernel="k"))
    snk.add_in("in", DataType("b", "complex64", (16, 16)))
    app.connect(src.port("out"), snk.port("in"))
    with pytest.raises(ModelError, match="sizes differ"):
        validate_application(app)


def test_reshape_is_warning_not_error():
    app = ApplicationModel("app")
    src = app.add_block(FunctionBlock("src", kernel="k"))
    src.add_out("out", DataType("a", "complex64", (4, 16)))
    snk = app.add_block(FunctionBlock("snk", kernel="k"))
    snk.add_in("in", DataType("b", "complex64", (8, 8)))
    app.connect(src.port("out"), snk.port("in"))
    issues = validate_application(app, strict=False)
    assert any("reshape" in i.message for i in issues)
    assert not any(i.severity == "error" for i in issues)


def test_stripe_axis_out_of_range_is_error():
    app = ApplicationModel("app")
    src = app.add_block(FunctionBlock("src", kernel="k"))
    vec = DataType("v", "float32", (16,))
    src.add_out("out", vec)
    bad = app.add_block(FunctionBlock("bad", kernel="k"))
    bad.add_in("in", vec, striped(axis=1))  # axis 1 on a rank-1 type
    app.connect(src.port("out"), bad.port("in"))
    with pytest.raises(ModelError, match="out of range"):
        validate_application(app)


def test_more_threads_than_stripe_extent_is_error():
    app = ApplicationModel("app")
    src = app.add_block(FunctionBlock("src", kernel="k"))
    small = DataType("s", "complex64", (2, 16))
    src.add_out("out", small)
    work = app.add_block(FunctionBlock("work", kernel="k", threads=4))
    work.add_in("in", small, striped(0))  # 4 threads over 2 rows
    app.connect(src.port("out"), work.port("in"))
    with pytest.raises(ModelError, match="exceed stripe extent"):
        validate_application(app)


def test_double_writer_to_input_is_error():
    app = minimal_app()
    src2 = app.add_block(FunctionBlock("src2", kernel="k"))
    src2.add_out("out", MTYPE)
    app.connect(src2.port("out"), app.children["snk"].port("in"))
    with pytest.raises(ModelError, match="multiple incoming"):
        validate_application(app)


def test_cycle_reported_through_validation():
    app = ApplicationModel("cyc")
    a = app.add_block(FunctionBlock("a", kernel="k"))
    a.add_in("i", MTYPE)
    a.add_out("o", MTYPE)
    b = app.add_block(FunctionBlock("b", kernel="k"))
    b.add_in("i", MTYPE)
    b.add_out("o", MTYPE)
    app.connect(a.port("o"), b.port("i"))
    app.connect(b.port("o"), a.port("i"))
    with pytest.raises(ModelError, match="cycle"):
        validate_application(app)


def test_strict_false_returns_issues_without_raising():
    issues = validate_application(ApplicationModel("empty"), strict=False)
    assert any(i.severity == "error" for i in issues)
