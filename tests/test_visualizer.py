"""Visualizer tests: analysis queries, timeline rendering, full report."""

import pytest

from repro.apps import MatrixProvider, benchmark_mapping, corner_turn_model, fft2d_model
from repro.core.codegen import generate_glue
from repro.core.runtime import DEFAULT_CONFIG, ProbeEvent, SageRuntime, Trace
from repro.core.visualizer import (
    build_lanes,
    communication_volume,
    find_bottleneck,
    function_busy_time,
    latency_violations,
    render_gantt,
    run_report,
    utilization,
)
from repro.machine import Environment, SimCluster, cspi


@pytest.fixture(scope="module")
def run_result():
    nodes, n = 4, 64
    app = fft2d_model(n, nodes)
    glue = generate_glue(app, benchmark_mapping(app, nodes), num_processors=nodes)
    env = Environment()
    cluster = SimCluster.from_platform(env, cspi(), nodes)
    runtime = SageRuntime(glue, cluster, config=DEFAULT_CONFIG.timing_only())
    return runtime.run(iterations=3)


def make_trace(events):
    trace = Trace()
    for e in events:
        trace.record(e)
    return trace


def ev(time, kind, function="f", fid=0, thread=0, proc=0, it=0, detail="", nbytes=0):
    return ProbeEvent(time, kind, function, fid, thread, proc, it, detail, nbytes)


class TestAnalysisUnits:
    def test_utilization_single_span(self):
        trace = make_trace([
            ev(0.0, "enter", proc=0),
            ev(1.0, "exit", proc=0),
            ev(2.0, "enter", function="g", proc=1),
            ev(2.0, "exit", function="g", proc=1),
        ])
        util = utilization(trace, 2)
        assert util[0] == pytest.approx(0.5)
        assert util[1] == pytest.approx(0.0)

    def test_utilization_empty_trace(self):
        assert utilization(Trace(), 2) == [0.0, 0.0]

    def test_utilization_invalid_processors(self):
        with pytest.raises(ValueError):
            utilization(Trace(), 0)

    def test_function_busy_time_sums_threads(self):
        trace = make_trace([
            ev(0.0, "enter", thread=0),
            ev(1.0, "exit", thread=0),
            ev(0.0, "enter", thread=1),
            ev(2.0, "exit", thread=1),
        ])
        assert function_busy_time(trace) == {"f": pytest.approx(3.0)}

    def test_find_bottleneck(self):
        trace = make_trace([
            ev(0.0, "enter", function="cheap"),
            ev(1.0, "exit", function="cheap"),
            ev(0.0, "enter", function="heavy", thread=1),
            ev(5.0, "exit", function="heavy", thread=1),
            ev(5.0, "send", function="heavy", detail="b", nbytes=100),
        ])
        b = find_bottleneck(trace)
        assert b.function == "heavy"
        assert b.share == pytest.approx(5 / 6)
        assert b.comm_share == pytest.approx(1.0)

    def test_find_bottleneck_empty(self):
        assert find_bottleneck(Trace()) is None

    def test_latency_violations(self):
        assert latency_violations([0.1, 0.5, 0.2], threshold=0.3) == [(1, 0.5)]
        with pytest.raises(ValueError):
            latency_violations([0.1], threshold=0)

    def test_communication_volume_groups_by_buffer(self):
        trace = make_trace([
            ev(0.0, "send", detail="a->b", nbytes=10),
            ev(1.0, "send", detail="a->b", nbytes=20),
            ev(2.0, "send", detail="b->c", nbytes=5),
        ])
        assert communication_volume(trace) == {"a->b": 30, "b->c": 5}

    def test_disabled_trace_records_nothing(self):
        trace = Trace(enabled=False)
        trace.record(ev(0.0, "enter"))
        assert len(trace) == 0

    def test_bad_probe_kind_rejected(self):
        with pytest.raises(ValueError):
            ev(0.0, "teleport")


class TestTimeline:
    def test_lanes_grouped_by_processor(self, run_result):
        lanes = build_lanes(run_result.trace, 4)
        assert len(lanes) == 4
        assert all(lane.spans for lane in lanes)

    def test_lane_spans_sorted(self, run_result):
        for lane in build_lanes(run_result.trace, 4):
            starts = [s for s, _, _ in lane.spans]
            assert starts == sorted(starts)

    def test_gantt_renders_rows_per_processor(self, run_result):
        text = render_gantt(run_result.trace, 4, width=40)
        rows = text.splitlines()
        assert rows[0].startswith("P0  |")
        assert rows[3].startswith("P3  |")
        assert "#" in rows[0]
        assert "s/col" in rows[-1]

    def test_gantt_empty_trace(self):
        assert render_gantt(Trace(), 2) == "(empty trace)"

    def test_gantt_width_validation(self):
        with pytest.raises(ValueError):
            render_gantt(Trace(), 2, width=3)


class TestRunReport:
    def test_report_contains_all_sections(self, run_result):
        report = run_report(run_result, processors=4)
        for section in (
            "SAGE Visualizer run report",
            "processor utilization",
            "function busy time",
            "bottleneck",
            "communication volume",
            "timeline",
        ):
            assert section in report

    def test_report_names_the_heavy_functions(self, run_result):
        report = run_report(run_result, processors=4)
        assert "rowfft" in report
        assert "colfft" in report

    def test_report_latency_threshold_section(self, run_result):
        # impossible threshold: every iteration violates
        report = run_report(run_result, processors=4, latency_threshold=1e-12)
        assert "3 violation(s)" in report

    def test_report_on_real_data_run(self):
        nodes, n = 2, 16
        app = corner_turn_model(n, nodes)
        glue = generate_glue(app, benchmark_mapping(app, nodes), num_processors=nodes)
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), nodes)
        runtime = SageRuntime(glue, cluster)
        result = runtime.run(iterations=1, input_provider=MatrixProvider(n))
        report = run_report(result, processors=nodes)
        assert "turn" in report
