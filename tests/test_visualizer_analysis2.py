"""Tests for the extended Visualizer displays: stage breakdown + histogram."""

import pytest

from repro.apps import benchmark_mapping, fft2d_model
from repro.core.codegen import generate_glue
from repro.core.runtime import DEFAULT_CONFIG, ProbeEvent, SageRuntime, Trace
from repro.core.visualizer import latency_histogram, stage_breakdown
from repro.machine import Environment, SimCluster, cspi


def ev(time, kind, function="f", thread=0, it=0):
    return ProbeEvent(time, kind, function, 0, thread, 0, it)


class TestStageBreakdown:
    def test_filters_by_iteration(self):
        trace = Trace()
        for k, (t0, t1) in enumerate([(0.0, 1.0), (2.0, 2.5)]):
            trace.record(ev(t0, "enter", it=k))
            trace.record(ev(t1, "exit", it=k))
        assert stage_breakdown(trace, 0) == {"f": pytest.approx(1.0)}
        assert stage_breakdown(trace, 1) == {"f": pytest.approx(0.5)}
        assert stage_breakdown(trace, 9) == {}

    def test_sums_threads_within_iteration(self):
        trace = Trace()
        for t in range(3):
            trace.record(ev(0.0, "enter", thread=t))
            trace.record(ev(2.0, "exit", thread=t))
        assert stage_breakdown(trace, 0) == {"f": pytest.approx(6.0)}

    def test_on_real_run(self):
        nodes = 4
        app = fft2d_model(64, nodes)
        glue = generate_glue(app, benchmark_mapping(app, nodes), num_processors=nodes)
        env = Environment()
        cluster = SimCluster.from_platform(env, cspi(), nodes)
        runtime = SageRuntime(glue, cluster, config=DEFAULT_CONFIG.timing_only())
        result = runtime.run(iterations=2)
        bd = stage_breakdown(result.trace, 1)
        assert set(bd) == {"src", "rowfft", "colfft", "sink"}
        assert bd["rowfft"] > bd["src"]


class TestLatencyHistogram:
    def test_empty(self):
        assert latency_histogram([]) == "(no latencies)"

    def test_constant_latencies_collapse(self):
        text = latency_histogram([0.005] * 7)
        assert "all 7 iterations at 5.000 ms" in text

    def test_bins_and_counts(self):
        lats = [0.001] * 5 + [0.010] * 3
        text = latency_histogram(lats, bins=2, width=10)
        rows = text.splitlines()
        assert len(rows) == 2
        assert rows[0].endswith("| 5")
        assert rows[1].endswith("| 3")

    def test_peak_bar_full_width(self):
        lats = [0.001] * 8 + [0.002]
        text = latency_histogram(lats, bins=2, width=20)
        assert "#" * 20 in text

    def test_validation(self):
        with pytest.raises(ValueError):
            latency_histogram([0.1], bins=0)
        with pytest.raises(ValueError):
            latency_histogram([0.1], width=0)

    def test_all_latencies_counted(self):
        import random

        rng = random.Random(0)
        lats = [rng.uniform(0.001, 0.02) for _ in range(100)]
        text = latency_histogram(lats, bins=8)
        counts = [int(row.rsplit(" ", 1)[1]) for row in text.splitlines()]
        assert sum(counts) == 100
